"""Session cache: prompt memoization + paged (block) KV accounting.

Two concerns the serving layer needs from one component:

* **Prompt memoization** — repeated prompts (identical ``cache_key``)
  are served straight from an LRU store of previously computed
  activations, skipping the photonic core entirely.  A byte budget
  bounds the store; least-recently-used entries are evicted.
* **KV-session accounting** — decode-shaped workloads
  (:mod:`repro.workloads.llm`) keep per-request K/V state between
  steps.  Sessions store their per-step K/V vectors in fixed-size
  **pages** (:class:`KVBlock` of ``block_size`` tokens) drawn from a
  :class:`BlockPool` with a byte budget and a free list, the layout
  that lets the continuous (iteration-level) scheduler share photonic
  GEMV batches across sessions of different lengths without
  re-padding.  Byte accounting is *defined* as
  :func:`repro.workloads.llm.kv_cache_bytes` at the session's
  **page-rounded** context length, so the per-session ledger, the
  pool budget, and the Sec. VI-B analysis can never disagree about
  cache footprints (``block_size=1`` degenerates to exact per-token
  accounting — the pre-paging behaviour).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.workloads.llm import DecoderConfig, kv_cache_bytes

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()


class KVBlock:
    """One fixed-capacity page of per-token K/V vectors.

    A block owns two ``[block_size, dim]`` arrays and a fill count;
    token slots are written append-only.  Blocks are reusable: the
    :class:`BlockPool` zeroes them on reallocation, so a recycled page
    never leaks a previous session's state.
    """

    __slots__ = ("keys", "values", "fill")

    def __init__(self, block_size: int, dim: int) -> None:
        if block_size < 1 or dim < 1:
            raise ValueError(
                f"block_size and dim must be >= 1, got {block_size}, {dim}"
            )
        self.keys = np.zeros((block_size, dim))
        self.values = np.zeros((block_size, dim))
        self.fill = 0

    @property
    def block_size(self) -> int:
        return self.keys.shape[0]

    @property
    def full(self) -> bool:
        return self.fill >= self.block_size

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        if self.full:
            raise ValueError("append to a full KV block")
        self.keys[self.fill] = k
        self.values[self.fill] = v
        self.fill += 1

    def fill_zeros(self, tokens: int) -> None:
        """Occupy ``tokens`` slots with zero-state (prompt) tokens."""
        if self.fill + tokens > self.block_size:
            raise ValueError(
                f"{tokens} zero tokens do not fit a block at fill {self.fill}"
            )
        self.fill += tokens  # slots are already zeroed

    def reset(self) -> None:
        self.keys[:] = 0.0
        self.values[:] = 0.0
        self.fill = 0


class BlockPool:
    """Budgeted allocator of :class:`KVBlock` pages with a free list.

    The pool charges one "in use" unit per resident block; its byte
    view is ``in_use * block_bytes`` where ``block_bytes`` is
    :func:`kv_cache_bytes` at ``block_size`` tokens — identical, per
    page, to the session ledger.  ``allocate`` itself never fails
    (a *soft* budget): the continuous scheduler enforces the budget
    proactively via :meth:`can_fit`, preempting sessions before a
    batch would overrun, so request-mode engines without a scheduler
    keep working against an unbounded-by-default pool.

    Swap and migration move custody without touching the free list:
    :meth:`discharge` releases the budget of blocks that leave the
    pool (preempted to host memory, or exported to another replica)
    while the arrays travel with their session; :meth:`charge` is the
    inverse on re-admission/adoption.
    """

    def __init__(
        self,
        config: DecoderConfig,
        *,
        block_size: int = 1,
        capacity_bytes: int | None = None,
        kv_bits: int = 8,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}"
            )
        self.config = config
        self.block_size = block_size
        self.kv_bits = kv_bits
        self.block_bytes = kv_cache_bytes(config, block_size, bits=kv_bits)
        self.capacity_bytes = capacity_bytes
        #: Whole blocks the byte budget can hold (None = unbounded).
        self.capacity_blocks = (
            None if capacity_bytes is None else capacity_bytes // self.block_bytes
        )
        self._free: list[KVBlock] = []
        self.in_use = 0
        self.allocations = 0
        self.reuses = 0

    def blocks_for(self, tokens: int) -> int:
        """Pages covering ``tokens`` (the page-rounding rule)."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        return -(-tokens // self.block_size)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def in_use_bytes(self) -> int:
        return self.in_use * self.block_bytes

    def can_fit(self, blocks: int) -> bool:
        """Would charging ``blocks`` more stay within the budget?"""
        if self.capacity_blocks is None:
            return True
        return self.in_use + blocks <= self.capacity_blocks

    def allocate(self) -> KVBlock:
        """One zeroed block, reusing the free list when possible."""
        if self._free:
            block = self._free.pop()
            block.reset()
            self.reuses += 1
        else:
            block = KVBlock(self.block_size, self.config.dim)
            self.allocations += 1
        self.in_use += 1
        return block

    def release(self, blocks: "list[KVBlock]") -> None:
        """Return resident blocks to the free list (session closed)."""
        self.in_use -= len(blocks)
        self._free.extend(blocks)

    def recycle(self, blocks: "list[KVBlock]") -> None:
        """Free-list blocks that were *not* charged (a swapped session
        closing): reuse the arrays without double-crediting the budget."""
        self._free.extend(blocks)

    def discharge(self, blocks: int) -> None:
        """Blocks leave pool custody (swap-out / migration export)."""
        if blocks > self.in_use:
            raise ValueError(
                f"cannot discharge {blocks} blocks with {self.in_use} in use"
            )
        self.in_use -= blocks

    def charge(self, blocks: int) -> None:
        """Blocks enter pool custody (swap-in / migration adoption).

        Never fails: adoption (failover, migration) must not lose KV
        state, so an over-budget charge is allowed and left for the
        scheduler to resolve by preemption.
        """
        self.in_use += blocks

    def stats(self) -> dict:
        return {
            "block_size": self.block_size,
            "block_bytes": self.block_bytes,
            "capacity_bytes": self.capacity_bytes,
            "capacity_blocks": self.capacity_blocks,
            "in_use_blocks": self.in_use,
            "in_use_bytes": self.in_use_bytes,
            "free_blocks": self.free_blocks,
            "allocations": self.allocations,
            "reuses": self.reuses,
        }


@dataclass(frozen=True)
class PrefixChain:
    """An immutable chain of leading KV pages shared across sessions.

    The chain owns its blocks (custody sits with the shared tier, not
    any one replica's :class:`BlockPool`), and every adopter aliases
    the same arrays read-only: ``Session.has_room`` never points an
    append at a shared page, so the first private token after the fork
    lands on a fresh pool page (copy-on-write at the fork boundary).
    ``nbytes`` is :func:`kv_cache_bytes` at the chain's page-rounded
    length — the fleet charges it **once** no matter how many sessions
    fork from it.
    """

    prefix_id: str
    tokens: int
    blocks: tuple[KVBlock, ...]
    block_size: int
    nbytes: int

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


@dataclass
class Session:
    """Per-request decode state (one generation stream), paged.

    K/V vectors live in ``blocks``; ``prompt_slots`` of the leading
    slots hold materialized zero-state prompt tokens (pooled caches
    materialize the prompt so the page count always equals
    ``blocks_for(context_len)``; config-less caches keep the prompt
    implicit, ``prompt_slots == 0``).  ``swapped`` marks a preempted
    session whose blocks currently live outside the pool budget (the
    host-memory swap of the continuous scheduler) — the arrays, and
    therefore the bits, are untouched.

    ``shared_blocks`` leading blocks alias a :class:`PrefixChain`
    owned by the shared cache tier: they are read-only here, excluded
    from this cache's pool budget and byte ledger (the tier counts
    them once fleet-wide), and never returned to the pool free list.
    """

    session_id: str
    prompt_len: int = 0
    blocks: list[KVBlock] = field(default_factory=list)
    prompt_slots: int = 0
    swapped: bool = False
    shared_blocks: int = 0
    prefix_id: str | None = None

    @property
    def private_blocks(self) -> int:
        """Pages owned by this session (pool custody when resident)."""
        return len(self.blocks) - self.shared_blocks

    @property
    def generated(self) -> int:
        """Tokens appended by decode steps (excludes the prompt)."""
        return sum(block.fill for block in self.blocks) - self.prompt_slots

    @property
    def context_len(self) -> int:
        """Tokens of attendable context (prompt + generated)."""
        return self.prompt_len + self.generated

    def _slot(self, index: int) -> tuple[KVBlock, int]:
        for block in self.blocks:
            if index < block.fill:
                return block, index
            index -= block.fill
        raise IndexError("token slot out of range")

    @property
    def keys(self) -> list[np.ndarray]:
        """Generated-token K vectors, in step order (views into pages)."""
        return [
            self._slot(self.prompt_slots + i)[0].keys[
                self._slot(self.prompt_slots + i)[1]
            ]
            for i in range(self.generated)
        ]

    @property
    def values(self) -> list[np.ndarray]:
        """Generated-token V vectors, in step order (views into pages)."""
        return [
            self._slot(self.prompt_slots + i)[0].values[
                self._slot(self.prompt_slots + i)[1]
            ]
            for i in range(self.generated)
        ]

    def kv_arrays(self, dim: int) -> tuple[np.ndarray, np.ndarray]:
        """``([context, dim], [context, dim])`` K/V for attention.

        Prompt tokens are zero-state whether materialized in pages or
        implicit, so the concatenation is bit-identical to the
        flat-list layout paging replaced.
        """
        implicit = self.prompt_len - self.prompt_slots
        parts_k: list[np.ndarray] = []
        parts_v: list[np.ndarray] = []
        if implicit:
            parts_k.append(np.zeros((implicit, dim)))
            parts_v.append(np.zeros((implicit, dim)))
        for block in self.blocks:
            if block.fill:
                parts_k.append(block.keys[: block.fill])
                parts_v.append(block.values[: block.fill])
        if not parts_k:
            return np.zeros((0, dim)), np.zeros((0, dim))
        return np.concatenate(parts_k), np.concatenate(parts_v)

    @property
    def has_room(self) -> bool:
        """Does the last *private* page have a free token slot?

        Shared prefix pages are never appended to — a session whose
        block list ends at the shared boundary reports no room, so the
        next ``append_kv`` allocates a fresh private page (the
        copy-on-write fork point).
        """
        return self.private_blocks > 0 and not self.blocks[-1].full


class SessionCache:
    """LRU activation memoizer + paged KV-session ledger.

    Args:
        config: decoder architecture the KV accounting is sized for;
            required for the session ledger and the block pool,
            optional for pure memoization.
        capacity_bytes: LRU budget of the memo store (``None`` =
            unbounded).  Entries larger than the whole budget are not
            admitted.
        kv_bits: K/V element precision used by the byte accounting
            (the paper's decode analysis defaults to int8).
        block_size: tokens per KV page.  1 (the default) makes paging
            degenerate — byte accounting is exactly the pre-paging
            per-token ledger; larger pages round every session's
            footprint up to whole blocks.
        kv_capacity_bytes: byte budget of the :class:`BlockPool`
            (``None`` = unbounded).  The budget is enforced by the
            continuous scheduler (preemption), not by ``append_kv``.
    """

    def __init__(
        self,
        config: DecoderConfig | None = None,
        *,
        capacity_bytes: int | None = None,
        kv_bits: int = 8,
        block_size: int = 1,
        kv_capacity_bytes: int | None = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if config is None and kv_capacity_bytes is not None:
            raise ValueError(
                "a KV byte budget needs a DecoderConfig to size its pages"
            )
        self.config = config
        self.capacity_bytes = capacity_bytes
        self.kv_bits = kv_bits
        self.block_size = block_size
        self.pool: BlockPool | None = (
            BlockPool(
                config,
                block_size=block_size,
                capacity_bytes=kv_capacity_bytes,
                kv_bits=kv_bits,
            )
            if config is not None
            else None
        )
        self._memo: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._memo_bytes = 0
        self._sessions: dict[str, Session] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # get() runs on submitter threads while put() runs on the
        # worker; the LRU order, byte ledger, and counters share a lock
        # (reentrant: stats() reads the session ledger through it too).
        self._lock = threading.RLock()

    # -- prompt memoization --------------------------------------------------
    def get(self, key: Any) -> Any:
        """Cached value for ``key`` or the :data:`MISS` sentinel."""
        with self._lock:
            entry = self._memo.get(key, MISS)
            if entry is MISS:
                self.misses += 1
                return MISS
            self._memo.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Any, value: Any, nbytes: int | None = None) -> None:
        """Store ``value``; evict LRU entries past the byte budget."""
        if nbytes is None:
            nbytes = int(value.nbytes) if isinstance(value, np.ndarray) else 0
        if self.capacity_bytes is not None and nbytes > self.capacity_bytes:
            return  # would evict the whole store and still not fit
        with self._lock:
            if key in self._memo:
                self._memo_bytes -= self._memo.pop(key)[1]
            self._memo[key] = (value, nbytes)
            self._memo_bytes += nbytes
            if self.capacity_bytes is not None:
                while self._memo_bytes > self.capacity_bytes and len(self._memo) > 1:
                    _, (_, evicted_bytes) = self._memo.popitem(last=False)
                    self._memo_bytes -= evicted_bytes
                    self.evictions += 1

    @property
    def memo_entries(self) -> int:
        with self._lock:
            return len(self._memo)

    @property
    def memo_bytes(self) -> int:
        with self._lock:
            return self._memo_bytes

    # -- KV sessions ---------------------------------------------------------
    def _require_config(self) -> DecoderConfig:
        if self.config is None:
            raise ValueError(
                "KV accounting needs a DecoderConfig; construct the cache "
                "with SessionCache(config)"
            )
        return self.config

    def open_session(self, session_id: str, prompt_len: int = 0) -> Session:
        if prompt_len < 0:
            raise ValueError(f"prompt_len must be >= 0, got {prompt_len}")
        with self._lock:
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already open")
            session = Session(session_id=session_id, prompt_len=prompt_len)
            if self.pool is not None and prompt_len > 0:
                # Materialize the (zero-state) prompt into pages so the
                # resident block count always equals the page-rounded
                # ledger — pool budget and session_bytes cannot diverge.
                remaining = prompt_len
                for _ in range(self.pool.blocks_for(prompt_len)):
                    block = self.pool.allocate()
                    block.fill_zeros(min(remaining, block.block_size))
                    remaining -= block.fill
                    session.blocks.append(block)
                session.prompt_slots = prompt_len
            self._sessions[session_id] = session
            return session

    def session(self, session_id: str) -> Session:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(f"no open session {session_id!r}") from None

    def has_session(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def append_kv(self, session_id: str, k: np.ndarray, v: np.ndarray) -> int:
        """Append one decode step's K/V; returns the new context length.

        Allocates a fresh page when the session's last block is full —
        from the pool when the cache has one (zeroed free-list reuse),
        directly otherwise (config-less caches keep working without a
        ledger).
        """
        k = np.asarray(k, dtype=float)
        v = np.asarray(v, dtype=float)
        with self._lock:
            session = self.session(session_id)
            if not session.has_room:
                if self.pool is not None:
                    session.blocks.append(self.pool.allocate())
                else:
                    session.blocks.append(KVBlock(self.block_size, k.shape[0]))
            session.blocks[-1].append(k, v)
            return session.context_len

    def context_len(self, session_id: str) -> int:
        return self.session(session_id).context_len

    def session_blocks(self, session_id: str) -> int:
        """Pages the session's page-rounded context occupies."""
        session = self.session(session_id)
        return -(-session.context_len // self.block_size)

    def session_bytes(self, session_id: str) -> int:
        """Page-rounded KV footprint of one session's **private** pages
        — by definition ``kv_cache_bytes(config, blocks * block_size,
        kv_bits)`` over the pages this session owns, so the ledger, the
        :class:`BlockPool` budget, and the Sec. VI-B analysis agree
        page for page.  Shared prefix pages are excluded: the tier
        charges them once fleet-wide (:meth:`shared_session_bytes`
        reports this session's view of that chain)."""
        config = self._require_config()
        session = self.session(session_id)
        private = session.private_blocks
        if private == 0:
            return 0
        return kv_cache_bytes(
            config, private * self.block_size, bits=self.kv_bits
        )

    def shared_session_bytes(self, session_id: str) -> int:
        """Bytes of the shared prefix pages this session aliases
        (page-rounded).  Summing this across sessions multiple-counts
        the chain — fleet accounting uses the tier's single charge."""
        config = self._require_config()
        session = self.session(session_id)
        if session.shared_blocks == 0:
            return 0
        return kv_cache_bytes(
            config,
            session.shared_blocks * self.block_size,
            bits=self.kv_bits,
        )

    def total_kv_bytes(self) -> int:
        with self._lock:
            return sum(self.session_bytes(sid) for sid in self._sessions)

    def resident_kv_bytes(self) -> int:
        """Page-rounded bytes of the sessions charged to the pool
        (excludes swapped-out sessions) — equals ``pool.in_use_bytes``
        whenever every resident page was pool-allocated."""
        with self._lock:
            return sum(
                self.session_bytes(sid)
                for sid, session in self._sessions.items()
                if not session.swapped
            )

    # -- preemption (continuous-scheduler swap) ------------------------------
    def swap_out(self, session_id: str) -> int:
        """Preempt: release the session's pool budget, keep its bits.

        The page arrays stay attached to the session (modelling a swap
        to host memory), so a later :meth:`swap_in` resumes with
        bit-identical state.  Returns the blocks discharged.
        """
        with self._lock:
            session = self.session(session_id)
            if session.swapped:
                return 0
            session.swapped = True
            if self.pool is not None:
                self.pool.discharge(session.private_blocks)
            return session.private_blocks

    def swap_in(self, session_id: str) -> int:
        """Re-admit a preempted session's pages into the pool budget."""
        with self._lock:
            session = self.session(session_id)
            if not session.swapped:
                return 0
            session.swapped = False
            if self.pool is not None:
                self.pool.charge(session.private_blocks)
            return session.private_blocks

    def pop_session(self, session_id: str) -> Session:
        """Remove and return a session wholesale (KV-migration export).

        The cluster layer moves a decode session between replicas by
        popping it from the old owner's cache and
        :meth:`adopt_session`-ing it into the new one — the **block
        list travels with the** :class:`Session` object (and its pool
        budget is discharged here), so a migrated session's functional
        state, page layout, and therefore its bits are unchanged.

        Custody follows the one rule every mover shares: resident
        **private** pages are pool-charged; swapped sessions carry no
        charge (the ``swapped`` flag travels with the session so the
        adopting pool is not double-charged); shared prefix pages
        always belong to the tier, never the pool.
        """
        with self._lock:
            session = self.session(session_id)
            del self._sessions[session_id]
            if self.pool is not None and not session.swapped:
                self.pool.discharge(session.private_blocks)
            return session

    def adopt_session(self, session: Session) -> Session:
        """Insert a session exported by another cache's :meth:`pop_session`.

        Charges this cache's pool for the adopted pages (swapped
        sessions stay uncharged until the scheduler swaps them in).
        Adoption never fails on budget: failover must not lose KV
        state, so an over-budget fleet resolves by later preemption.
        """
        with self._lock:
            if session.session_id in self._sessions:
                raise ValueError(
                    f"session {session.session_id!r} already open here"
                )
            self._sessions[session.session_id] = session
            if self.pool is not None and not session.swapped:
                self.pool.charge(session.private_blocks)
            return session

    # -- prefix sharing (shared cache tier) ----------------------------------
    def export_prefix(
        self, session_id: str, prefix_id: str, tokens: int | None = None
    ) -> PrefixChain:
        """Freeze a session's leading pages into a shareable chain.

        The first ``tokens`` of context (default: the whole context)
        become a :class:`PrefixChain`: custody of those pages transfers
        out of this cache's :class:`BlockPool` (discharged here, the
        same custody rule :meth:`pop_session` applies to migration) and
        the session keeps aliasing them read-only via
        ``shared_blocks``.  The boundary must be page-aligned or cover
        the whole context, so the chain never splits a page.
        """
        config = self._require_config()
        with self._lock:
            session = self.session(session_id)
            if session.shared_blocks:
                raise ValueError(
                    f"session {session_id!r} already shares prefix "
                    f"{session.prefix_id!r}"
                )
            if session.swapped:
                raise ValueError(
                    "cannot export a prefix from a swapped-out session"
                )
            if session.prompt_len != session.prompt_slots:
                raise ValueError(
                    "cannot export an implicit (unmaterialized) prompt prefix"
                )
            if tokens is None:
                tokens = session.context_len
            if tokens < 1 or tokens > session.context_len:
                raise ValueError(
                    f"prefix of {tokens} tokens outside context "
                    f"{session.context_len}"
                )
            if tokens != session.context_len and tokens % self.block_size:
                raise ValueError(
                    f"prefix boundary {tokens} must be page-aligned "
                    f"(block_size={self.block_size}) or the whole context"
                )
            n_blocks = -(-tokens // self.block_size)
            chain = PrefixChain(
                prefix_id=prefix_id,
                tokens=tokens,
                blocks=tuple(session.blocks[:n_blocks]),
                block_size=self.block_size,
                nbytes=kv_cache_bytes(
                    config, n_blocks * self.block_size, bits=self.kv_bits
                ),
            )
            session.shared_blocks = n_blocks
            session.prefix_id = prefix_id
            if self.pool is not None:
                self.pool.discharge(n_blocks)
            return chain

    def adopt_prefix(self, session_id: str, chain: PrefixChain) -> Session:
        """Open a session whose prompt is a shared :class:`PrefixChain`.

        The new session aliases the chain's pages (prompt fully
        materialized: ``prompt_len == prompt_slots == chain.tokens``)
        without charging this cache's pool — the tier already accounts
        for the chain once fleet-wide.  The first decode step allocates
        a fresh private page (see :attr:`Session.has_room`), so
        adopters never write into shared state.
        """
        with self._lock:
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already open")
            if chain.block_size != self.block_size:
                raise ValueError(
                    f"prefix pages of {chain.block_size} tokens do not fit a "
                    f"cache paged at {self.block_size}"
                )
            session = Session(
                session_id=session_id,
                prompt_len=chain.tokens,
                blocks=list(chain.blocks),
                prompt_slots=chain.tokens,
                shared_blocks=len(chain.blocks),
                prefix_id=chain.prefix_id,
            )
            self._sessions[session_id] = session
            return session

    def session_ids(self) -> list[str]:
        """Open session ids, sorted (deterministic re-homing order)."""
        with self._lock:
            return sorted(self._sessions)

    def close_session(self, session_id: str) -> int:
        """Drop a session; returns the bytes it was holding.

        Resident **private** pages go back on the pool free list for
        reuse; swapped pages are recycled without a budget credit (they
        were discharged at preemption).  Shared prefix pages are simply
        dropped from this cache — the tier owns them and other sessions
        may still be reading them; releasing the tier's refcount is the
        cluster's job.
        """
        with self._lock:
            freed = self.session_bytes(session_id) if self.config else 0
            session = self._sessions.pop(session_id)
            private = session.blocks[session.shared_blocks :]
            if self.pool is not None:
                if session.swapped:
                    self.pool.recycle(private)
                else:
                    self.pool.release(private)
            session.blocks = []
            return freed

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def swapped_sessions(self) -> int:
        with self._lock:
            return sum(1 for s in self._sessions.values() if s.swapped)

    @property
    def prefix_sessions(self) -> int:
        """Open sessions aliasing a shared prefix chain."""
        with self._lock:
            return sum(1 for s in self._sessions.values() if s.shared_blocks)

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "memo_entries": self.memo_entries,
            "memo_bytes": self.memo_bytes,
            "open_sessions": self.open_sessions,
            "swapped_sessions": self.swapped_sessions,
            "prefix_sessions": self.prefix_sessions,
            "block_size": self.block_size,
            "total_kv_bytes": self.total_kv_bytes() if self.config else 0,
            "resident_kv_bytes": self.resident_kv_bytes() if self.config else 0,
        }
        if self.pool is not None:
            stats["pool"] = self.pool.stats()
        return stats
