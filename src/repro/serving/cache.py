"""Session cache: prompt memoization + KV-cache accounting.

Two concerns the serving layer needs from one component:

* **Prompt memoization** — repeated prompts (identical ``cache_key``)
  are served straight from an LRU store of previously computed
  activations, skipping the photonic core entirely.  A byte budget
  bounds the store; least-recently-used entries are evicted.
* **KV-session accounting** — decode-shaped workloads
  (:mod:`repro.workloads.llm`) keep per-request K/V state between
  steps.  Sessions store the functional per-step K/V vectors the
  :class:`~repro.serving.servable.DecodeServable` attends over, and
  their byte accounting is *defined* as
  :func:`repro.workloads.llm.kv_cache_bytes` at the session's current
  context length, so the serving layer and the Sec. VI-B analysis can
  never disagree about cache footprints.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.workloads.llm import DecoderConfig, kv_cache_bytes

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()


@dataclass
class Session:
    """Per-request decode state (one generation stream)."""

    session_id: str
    prompt_len: int = 0
    #: K/V vectors appended by decode steps (prompt tokens are modelled
    #: as zero-state; see ``DecodeServable``).
    keys: list[np.ndarray] = field(default_factory=list)
    values: list[np.ndarray] = field(default_factory=list)

    @property
    def context_len(self) -> int:
        """Tokens of attendable context (prompt + generated)."""
        return self.prompt_len + len(self.keys)


class SessionCache:
    """LRU activation memoizer + KV-session ledger.

    Args:
        config: decoder architecture the KV accounting is sized for;
            required for the session API, optional for pure memoization.
        capacity_bytes: LRU budget of the memo store (``None`` =
            unbounded).  Entries larger than the whole budget are not
            admitted.
        kv_bits: K/V element precision used by the byte accounting
            (the paper's decode analysis defaults to int8).
    """

    def __init__(
        self,
        config: DecoderConfig | None = None,
        *,
        capacity_bytes: int | None = None,
        kv_bits: int = 8,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self.config = config
        self.capacity_bytes = capacity_bytes
        self.kv_bits = kv_bits
        self._memo: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._memo_bytes = 0
        self._sessions: dict[str, Session] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # get() runs on submitter threads while put() runs on the
        # worker; the LRU order, byte ledger, and counters share a lock
        # (reentrant: stats() reads the session ledger through it too).
        self._lock = threading.RLock()

    # -- prompt memoization --------------------------------------------------
    def get(self, key: Any) -> Any:
        """Cached value for ``key`` or the :data:`MISS` sentinel."""
        with self._lock:
            entry = self._memo.get(key, MISS)
            if entry is MISS:
                self.misses += 1
                return MISS
            self._memo.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Any, value: Any, nbytes: int | None = None) -> None:
        """Store ``value``; evict LRU entries past the byte budget."""
        if nbytes is None:
            nbytes = int(value.nbytes) if isinstance(value, np.ndarray) else 0
        if self.capacity_bytes is not None and nbytes > self.capacity_bytes:
            return  # would evict the whole store and still not fit
        with self._lock:
            if key in self._memo:
                self._memo_bytes -= self._memo.pop(key)[1]
            self._memo[key] = (value, nbytes)
            self._memo_bytes += nbytes
            if self.capacity_bytes is not None:
                while self._memo_bytes > self.capacity_bytes and len(self._memo) > 1:
                    _, (_, evicted_bytes) = self._memo.popitem(last=False)
                    self._memo_bytes -= evicted_bytes
                    self.evictions += 1

    @property
    def memo_entries(self) -> int:
        with self._lock:
            return len(self._memo)

    @property
    def memo_bytes(self) -> int:
        with self._lock:
            return self._memo_bytes

    # -- KV sessions ---------------------------------------------------------
    def _require_config(self) -> DecoderConfig:
        if self.config is None:
            raise ValueError(
                "KV accounting needs a DecoderConfig; construct the cache "
                "with SessionCache(config)"
            )
        return self.config

    def open_session(self, session_id: str, prompt_len: int = 0) -> Session:
        if prompt_len < 0:
            raise ValueError(f"prompt_len must be >= 0, got {prompt_len}")
        with self._lock:
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already open")
            session = Session(session_id=session_id, prompt_len=prompt_len)
            self._sessions[session_id] = session
            return session

    def session(self, session_id: str) -> Session:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(f"no open session {session_id!r}") from None

    def has_session(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def append_kv(self, session_id: str, k: np.ndarray, v: np.ndarray) -> int:
        """Append one decode step's K/V; returns the new context length."""
        with self._lock:
            session = self.session(session_id)
            session.keys.append(np.asarray(k, dtype=float))
            session.values.append(np.asarray(v, dtype=float))
            return session.context_len

    def context_len(self, session_id: str) -> int:
        return self.session(session_id).context_len

    def session_bytes(self, session_id: str) -> int:
        """KV footprint of one session — by definition
        ``kv_cache_bytes(config, context_len, kv_bits)``."""
        session = self.session(session_id)
        if session.context_len == 0:
            return 0
        return kv_cache_bytes(
            self._require_config(), session.context_len, bits=self.kv_bits
        )

    def total_kv_bytes(self) -> int:
        with self._lock:
            return sum(self.session_bytes(sid) for sid in self._sessions)

    def pop_session(self, session_id: str) -> Session:
        """Remove and return a session wholesale (KV-migration export).

        The cluster layer moves a decode session between replicas by
        popping it from the old owner's cache and
        :meth:`adopt_session`-ing it into the new one — the K/V arrays
        travel with the :class:`Session` object, so a migrated session's
        functional state (and therefore its bits) is unchanged.
        """
        with self._lock:
            session = self.session(session_id)
            del self._sessions[session_id]
            return session

    def adopt_session(self, session: Session) -> Session:
        """Insert a session exported by another cache's :meth:`pop_session`."""
        with self._lock:
            if session.session_id in self._sessions:
                raise ValueError(
                    f"session {session.session_id!r} already open here"
                )
            self._sessions[session.session_id] = session
            return session

    def session_ids(self) -> list[str]:
        """Open session ids, sorted (deterministic re-homing order)."""
        with self._lock:
            return sorted(self._sessions)

    def close_session(self, session_id: str) -> int:
        """Drop a session; returns the bytes it was holding."""
        with self._lock:
            freed = self.session_bytes(session_id)
            del self._sessions[session_id]
            return freed

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "memo_entries": self.memo_entries,
            "memo_bytes": self.memo_bytes,
            "open_sessions": self.open_sessions,
            "total_kv_bytes": self.total_kv_bytes() if self.config else 0,
        }
