"""Request admission: handles, the bounded queue, and serving errors.

A ``submit()`` call turns into an :class:`InferenceRequest` carrying a
:class:`RequestHandle` — the caller's Future-style view of the result —
and enters a bounded :class:`RequestQueue`.  The bound is the engine's
backpressure mechanism: when the photonic core cannot keep up, producers
either block until a slot frees (wall-clock mode) or get an immediate
:class:`QueueFull` to shed load upstream.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any


class ServingError(RuntimeError):
    """Base class for serving-subsystem failures."""


class QueueFull(ServingError):
    """The bounded request queue rejected a submission (backpressure)."""


class EngineClosed(ServingError):
    """The engine (or its queue) no longer accepts submissions."""


class RequestHandle:
    """Future-style view of one in-flight request.

    The submitting thread keeps the handle; the worker resolves it when
    the coalesced batch finishes (or fails).  Timestamps come from the
    engine's clock, so under a :class:`~repro.serving.clock.SimulatedClock`
    the latency breakdown is exactly reproducible.
    """

    def __init__(self, request_id: int, arrival: float) -> None:
        self.request_id = request_id
        self.arrival = arrival  #: submit time (engine clock)
        self.started: float | None = None  #: batch execution start
        self.finished: float | None = None  #: result availability
        self.batch_size: int | None = None  #: coalesced batch occupancy
        self.cache_hit = False  #: served straight from the SessionCache
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        self._callback_lock = threading.Lock()
        self._callbacks: list[Any] = []

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; raise the execution error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not resolved within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; return the failure (None on success)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not resolved within {timeout}s"
            )
        return self._error

    @property
    def latency(self) -> float | None:
        """End-to-end seconds (arrival -> finished); None while pending."""
        if self.finished is None:
            return None
        return self.finished - self.arrival

    @property
    def queue_wait(self) -> float | None:
        """Seconds spent queued before batch execution started."""
        if self.started is None:
            return None
        return self.started - self.arrival

    def add_done_callback(self, fn) -> None:
        """Call ``fn(handle)`` once the handle resolves (or fails).

        Runs in the resolving thread — the engine worker in wall-clock
        mode, the stepping thread in manual mode — immediately if the
        handle is already done.  This is how the cluster layer observes
        per-replica completions without polling; callbacks must not
        raise.
        """
        with self._callback_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _fire_callbacks(self) -> None:
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    # -- worker side ---------------------------------------------------------
    def _resolve(
        self,
        value: Any,
        *,
        started: float,
        finished: float,
        batch_size: int,
        cache_hit: bool = False,
    ) -> None:
        self._value = value
        self.started = started
        self.finished = finished
        self.batch_size = batch_size
        self.cache_hit = cache_hit
        self._event.set()
        self._fire_callbacks()

    def _fail(
        self,
        error: BaseException,
        *,
        started: float | None = None,
        finished: float | None = None,
        batch_size: int | None = None,
    ) -> None:
        self._error = error
        self.started = started
        self.finished = finished
        self.batch_size = batch_size
        self._event.set()
        self._fire_callbacks()


@dataclass
class InferenceRequest:
    """One queued unit of work (payload already ``prepare()``-d).

    ``span`` is the request's open trace span when the engine's tracer
    is enabled (``None`` otherwise — the default no-tracing path never
    allocates one); it rides along so dispatch and completion events
    land on the span that opened at submission.
    """

    payload: Any
    handle: RequestHandle
    arrival: float
    cache_key: Any = None
    session_id: str | None = None
    request_id: int = field(default=0)
    span: Any = None


class RequestQueue:
    """Bounded FIFO of :class:`InferenceRequest` with two conditions.

    ``not_empty`` and ``not_full`` share one mutex, so the
    :class:`~repro.serving.batcher.DynamicBatcher` can wait for work and
    pop a coalesced batch atomically while producers wait for capacity.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: deque[InferenceRequest] = deque()
        self.mutex = threading.Lock()
        self.not_empty = threading.Condition(self.mutex)
        self.not_full = threading.Condition(self.mutex)
        self._closed = False

    def __len__(self) -> int:
        with self.mutex:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(
        self,
        request: InferenceRequest,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Enqueue; apply backpressure when full.

        ``block=False`` (or an expired ``timeout``) raises
        :class:`QueueFull` instead of waiting for a free slot.
        """
        with self.not_full:
            if self._closed:
                raise EngineClosed("queue is closed")
            if len(self._items) >= self.maxsize:
                if not block:
                    raise QueueFull(
                        f"queue at capacity ({self.maxsize}); request rejected"
                    )
                deadline = None if timeout is None else time.monotonic() + timeout
                while len(self._items) >= self.maxsize and not self._closed:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise QueueFull(
                            f"queue still at capacity ({self.maxsize}) "
                            f"after {timeout}s"
                        )
                    self.not_full.wait(remaining)
                if self._closed:
                    raise EngineClosed("queue closed while waiting for capacity")
            self._items.append(request)
            self.not_empty.notify()

    def pop_locked(self, n: int) -> list[InferenceRequest]:
        """Pop up to ``n`` requests FIFO.  Caller must hold ``mutex``."""
        batch = [self._items.popleft() for _ in range(min(n, len(self._items)))]
        if batch:
            self.not_full.notify_all()
        return batch

    def drain_pending(self) -> list[InferenceRequest]:
        """Remove and return everything still queued (for failing fast)."""
        with self.mutex:
            pending = list(self._items)
            self._items.clear()
            self.not_full.notify_all()
            return pending

    def close(self) -> None:
        """Refuse further puts and wake every waiter."""
        with self.mutex:
            self._closed = True
            self.not_empty.notify_all()
            self.not_full.notify_all()
