"""Shared machinery for the weight-static photonic baselines.

The MZI-array and MRR-bank baselines both execute GEMMs as tiled
matrix-vector products on ``k x k`` weight-static cores: the weight tile
is mapped into the photonic circuit, input vectors stream through at the
photonic clock, and switching to the next weight tile costs a
reconfiguration delay.  This module provides

* :class:`PTCCapabilities` / :data:`TABLE_I` — the qualitative design
  comparison of the paper's Table I as structured data;
* :class:`WeightStaticConfig` — the common configuration record;
* :class:`WeightStaticAccelerator` — cycle/energy accounting shared by
  the concrete baselines, using the same device library, memory system
  and digital envelope as the Lightening-Transformer models so the
  comparisons isolate the PTC design.

Energy conventions (matching the paper's methodology):

* static powers (locking, digital, leakage) integrate over the
  *compute-active* time — accelerators power-gate during
  reconfiguration stalls;
* the full-range decomposition penalty multiplies the streamed cycles
  (the ``(X+ - X-)(Y+ - Y-)`` multi-pass of incoherent designs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.arch.config import DEFAULT_CLOCK
from repro.arch.energy import (
    CAT_ADC,
    CAT_DATA_MOVEMENT,
    CAT_DETECTION,
    CAT_LASER,
    CAT_OP1_DAC,
    CAT_OP1_MOD,
    CAT_OP2_DAC,
    CAT_OP2_MOD,
    CAT_STATIC,
    EnergyReport,
)
from repro.arch.memory import SRAMMacro, HBMModel
from repro.arch.power import DIGITAL_POWER_BASE, DIGITAL_POWER_PER_TILE
from repro.devices.laser import required_laser_power
from repro.devices.library import DeviceLibrary, default_library
from repro.devices.scaling import adc_energy_per_conversion, dac_energy_per_conversion
from repro.workloads.gemm import GEMMOp


@dataclass(frozen=True)
class PTCCapabilities:
    """One row of the paper's Table I."""

    name: str
    operand1: str  #: e.g. "static, full-range"
    operand2: str
    mapping_cost: str  #: "low" / "medium" / "high"
    operation: str  #: "MVM" or "MM"
    dynamic_mm: bool  #: efficient dynamic matrix multiplication
    full_range_no_overhead: bool


TABLE_I: dict[str, PTCCapabilities] = {
    "mzi": PTCCapabilities(
        "MZI array", "static, full-range", "dynamic, full-range",
        "high", "MVM", dynamic_mm=False, full_range_no_overhead=True,
    ),
    "pcm": PTCCapabilities(
        "PCM crossbar", "static, positive-only", "dynamic, positive-only",
        "medium", "MM", dynamic_mm=False, full_range_no_overhead=False,
    ),
    "mrr1": PTCCapabilities(
        "MRR bank 1", "dynamic, full-range", "dynamic, positive-only",
        "low", "MVM", dynamic_mm=True, full_range_no_overhead=False,
    ),
    "mrr2": PTCCapabilities(
        "MRR bank 2", "dynamic, positive-only", "dynamic, positive-only",
        "low", "MVM", dynamic_mm=True, full_range_no_overhead=False,
    ),
    "dptc": PTCCapabilities(
        "DPTC (ours)", "dynamic, full-range", "dynamic, full-range",
        "low", "MM", dynamic_mm=True, full_range_no_overhead=True,
    ),
}


@dataclass(frozen=True)
class WeightStaticConfig:
    """Configuration of a weight-static MVM baseline accelerator."""

    name: str
    n_cores: int
    k: int  #: weight-tile dimension (k x k)
    bits: int = 4
    clock: float = DEFAULT_CLOCK
    #: cycles stream one input vector each; multiplied for decomposition
    decomposition_runs: int = 1
    #: seconds per weight-tile switch (0 = hidden/negligible)
    reconfig_time: float = 0.0
    #: per-channel optical path loss (dB) for the laser model
    path_loss_db: float = 10.0
    #: WDM channels fed per core
    channels_per_core: int = 12
    #: static locking power per core (W) while weights are held
    locking_power_per_core: float = 0.0
    #: dynamic modulation energy per streamed input scalar (J)
    input_mod_energy: float = 0.0
    library: DeviceLibrary = field(default_factory=default_library)

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.k < 1:
            raise ValueError("core count and tile size must be >= 1")
        if self.decomposition_runs < 1:
            raise ValueError("decomposition_runs must be >= 1")

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock

    @property
    def macs_per_cycle(self) -> int:
        return self.n_cores * self.k * self.k


@dataclass(frozen=True)
class BaselineRunResult:
    """Latency/energy of one workload on a baseline accelerator."""

    workload: str
    latency: float  #: s, including reconfiguration stalls
    active_time: float  #: s of actual compute
    energy: EnergyReport

    @property
    def energy_joules(self) -> float:
        return self.energy.total

    @property
    def edp(self) -> float:
        return self.energy.total * self.latency

    @property
    def fps(self) -> float:
        return 1.0 / self.latency


class WeightStaticAccelerator:
    """Cycle and energy accounting for weight-static MVM baselines."""

    def __init__(self, config: WeightStaticConfig) -> None:
        self.config = config
        lib = config.library
        self._e_dac = dac_energy_per_conversion(config.bits, config.clock, lib.dac)
        self._e_adc = adc_energy_per_conversion(config.bits, lib.adc)
        self._e_pd = lib.photodetector.power / config.clock
        self._e_tia = lib.tia.power / config.clock
        self._p_laser_per_core = required_laser_power(
            config.channels_per_core, config.path_loss_db, config.bits, lib
        )
        # Same digital/memory envelope as LT-B for a fair system-level
        # comparison (4-tile digital units + a 2 MB global SRAM).
        self._p_static = (
            4 * DIGITAL_POWER_PER_TILE
            + DIGITAL_POWER_BASE
            + SRAMMacro(2 * 1024 * 1024).leakage_power
        )
        self._hbm = HBMModel()
        self._sram = SRAMMacro(32 * 1024)
        self._element_bytes = config.bits / 8.0

    # -- timing ----------------------------------------------------------
    def op_weight_tiles(self, op: GEMMOp) -> int:
        """Weight tiles (k x k) a GEMM op maps, across instances."""
        k = self.config.k
        return math.ceil(op.k / k) * math.ceil(op.n / k) * op.count

    def op_stream_cycles(self, op: GEMMOp) -> int:
        """Total streamed MVM cycles (before dividing over cores)."""
        return self.op_weight_tiles(op) * op.m * self.config.decomposition_runs

    def op_active_time(self, op: GEMMOp) -> float:
        """Compute-active seconds (cores run in parallel)."""
        cycles = math.ceil(self.op_stream_cycles(op) / self.config.n_cores)
        return cycles * self.config.cycle_time

    def op_reconfig_time(self, op: GEMMOp) -> float:
        """Reconfiguration stall seconds (parallel across cores)."""
        switches = math.ceil(self.op_weight_tiles(op) / self.config.n_cores)
        return switches * self.config.reconfig_time

    def op_latency(self, op: GEMMOp) -> float:
        return self.op_active_time(op) + self.op_reconfig_time(op)

    def latency(self, ops: Iterable[GEMMOp]) -> float:
        return sum(self.op_latency(op) for op in ops)

    # -- energy -----------------------------------------------------------
    def op_energy(self, op: GEMMOp) -> EnergyReport:
        config = self.config
        report = EnergyReport()
        k = config.k
        stream_cycles = self.op_stream_cycles(op)  # total core-cycles
        active = self.op_active_time(op)
        tiles = self.op_weight_tiles(op)

        # op1 (static weights): locking power over the active time plus
        # the (amortised) programming DACs at each tile switch.
        report.add(
            CAT_OP1_MOD,
            config.locking_power_per_core * config.n_cores * active,
        )
        report.add(
            CAT_OP1_DAC,
            tiles * k * k * self._e_dac * config.decomposition_runs,
        )

        # op2 (streamed inputs): DAC + modulator per scalar per cycle.
        input_scalars = stream_cycles * k
        report.add(CAT_OP2_DAC, input_scalars * self._e_dac)
        report.add(CAT_OP2_MOD, input_scalars * config.input_mod_energy)

        # Detection and conversion: k outputs per core-cycle.
        outputs = stream_cycles * k
        report.add(CAT_DETECTION, outputs * (self._e_pd + self._e_tia))
        report.add(CAT_ADC, outputs * self._e_adc)

        # Laser only burns while computing (cores power-gate in stalls).
        report.add(
            CAT_LASER, self._p_laser_per_core * config.n_cores * active
        )
        report.add(CAT_STATIC, self._p_static * active)

        # Data movement: weights from HBM once, inputs/outputs via SRAM.
        bytes_per = self._element_bytes
        energy = self._hbm.access_energy(op.static_weight_elements * bytes_per)
        energy += (input_scalars + outputs) * bytes_per * (
            self._sram.access_energy_per_byte
        )
        energy += tiles * k * k * bytes_per * self._sram.access_energy_per_byte
        report.add(CAT_DATA_MOVEMENT, energy)
        return report

    def energy(self, ops: Iterable[GEMMOp]) -> EnergyReport:
        report = EnergyReport()
        for op in ops:
            report = report + self.op_energy(op)
        return report

    def run(self, ops: Iterable[GEMMOp], workload: str = "trace") -> BaselineRunResult:
        ops = list(ops)
        return BaselineRunResult(
            workload=workload,
            latency=self.latency(ops),
            active_time=sum(self.op_active_time(op) for op in ops),
            energy=self.energy(ops),
        )
