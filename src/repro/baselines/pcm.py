"""PCM-crossbar baseline accelerator (after Feldmann et al.).

The non-volatile phase-change-material crossbar is the third prior-art
PTC of the paper's Table I: it performs one-shot matrix-matrix
multiplication (like DPTC) but with

* a **static, positive-only** weight operand stored in PCM cell
  transmissions — reprogramming costs the 10 ns–10 us device write
  the paper quotes, so dynamic attention operands force constant
  rewriting;
* a **positive-only** streamed operand (incoherent intensity encoding),
  so full-range GEMMs decompose into the four-product
  ``(X+ - X-)(Y+ - Y-)`` form (the paper's >2-4x overhead).

On the plus side the PCM cells hold state at **zero static power** (no
locking), which is the technology's selling point for weight-static
CNNs — exactly the trade-off Table I captures.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.arch.area import area_breakdown
from repro.arch.config import DEFAULT_CLOCK, AcceleratorConfig, lt_base
from repro.baselines.base import (
    BaselineRunResult,
    EnergyReport,
    WeightStaticAccelerator,
    WeightStaticConfig,
)
from repro.devices.library import DeviceLibrary, default_library
from repro.units import UM2, US

#: Non-volatile PCM cell write time (mid-range of the paper's 10 ns-10 us).
PCM_WRITE_TIME = 1 * US

#: PCM cell footprint including the access waveguide segment.
PCM_CELL_AREA = 15 * 15 * UM2

#: Energy per PCM cell write (amorphous/crystalline switching pulse).
PCM_WRITE_ENERGY = 50e-12  # 50 pJ

#: Four-product decomposition: both operands are positive-only.
PCM_DECOMPOSITION_RUNS = 4

#: Through-loss per PCM cell on the crossbar bus.
PCM_THROUGH_LOSS_DB = 0.1


def pcm_core_area(k: int, library: DeviceLibrary | None = None) -> float:
    """Area (m^2) of one k x k PCM crossbar core with its periphery."""
    lib = library if library is not None else default_library()
    cells = k * k * PCM_CELL_AREA
    converters = k * (lib.dac.area + lib.adc.area + lib.tia.area)
    detectors = k * lib.photodetector.area
    modulators = k * lib.mzm.area
    wdm = 2 * k * lib.microdisk.area
    source = lib.micro_comb.area + lib.laser.area
    return cells + converters + detectors + modulators + wdm + source


def pcm_path_loss_db(k: int, library: DeviceLibrary | None = None) -> float:
    """Per-channel loss: MUX/DEMUX + modulator + the crossbar through-path."""
    lib = library if library is not None else default_library()
    return (
        2 * lib.microdisk.insertion_loss_db
        + lib.mzm.insertion_loss_db
        + k * PCM_THROUGH_LOSS_DB
        + 3.0  # routing margin
    )


def area_matched_core_count(
    reference: AcceleratorConfig | None = None, k: int = 12
) -> int:
    """PCM cores that fit the reference design's compute-area budget."""
    ref = reference if reference is not None else lt_base()
    breakdown = area_breakdown(ref).by_category
    budget = sum(
        area for cat, area in breakdown.items() if cat not in ("memory", "digital")
    )
    return max(1, math.floor(budget / pcm_core_area(k, ref.library)))


class PCMAccelerator(WeightStaticAccelerator):
    """Area-matched PCM-crossbar baseline.

    Unlike the MVM baselines, a PCM crossbar streams ``k`` input vectors
    against a held ``k x k`` weight tile *concurrently* (one-shot MM),
    which we model as the same stream-cycle count with a ``k``-fold
    throughput factor; reprogramming dominates whenever operands are
    dynamic.
    """

    def __init__(
        self,
        n_cores: int | None = None,
        k: int = 12,
        bits: int = 4,
        library: DeviceLibrary | None = None,
    ) -> None:
        lib = library if library is not None else default_library()
        if n_cores is None:
            n_cores = area_matched_core_count(k=k)
        config = WeightStaticConfig(
            name="PCM-crossbar",
            n_cores=n_cores,
            k=k,
            bits=bits,
            decomposition_runs=PCM_DECOMPOSITION_RUNS,
            reconfig_time=PCM_WRITE_TIME,
            path_loss_db=pcm_path_loss_db(k, lib),
            channels_per_core=k,
            locking_power_per_core=0.0,  # non-volatile: zero hold power
            input_mod_energy=lib.mzm.tuning_power / DEFAULT_CLOCK,
            library=lib,
        )
        super().__init__(config)

    def op_stream_cycles(self, op) -> int:
        """PCM crossbars retire k vectors per cycle (MM, not MVM)."""
        base = super().op_stream_cycles(op)
        return math.ceil(base / self.config.k)

    def op_energy(self, op) -> EnergyReport:
        report = super().op_energy(op)
        # Reprogramming energy: every weight-tile switch rewrites k^2
        # PCM cells.  For dynamic operands this happens per tile per
        # decomposition pass — the cost that rules PCM out for attention.
        tiles = self.op_weight_tiles(op)
        writes = tiles * self.config.k**2
        if op.dynamic:
            writes *= self.config.decomposition_runs
        report.add("op1-mod", writes * PCM_WRITE_ENERGY)
        return report

    def op_reconfig_time(self, op) -> float:
        """Dynamic operands force a PCM rewrite per tile per pass."""
        stall = super().op_reconfig_time(op)
        if op.dynamic:
            stall *= self.config.decomposition_runs
        return stall

    def run(self, ops: Iterable, workload: str = "trace") -> BaselineRunResult:
        ops = list(ops)
        energy = EnergyReport()
        for op in ops:
            energy = energy + self.op_energy(op)
        return BaselineRunResult(
            workload=workload,
            latency=sum(self.op_latency(op) for op in ops),
            active_time=sum(self.op_active_time(op) for op in ops),
            energy=energy,
        )
