"""Baseline accelerators: prior photonic designs and electronic platforms.

* :class:`MZIAccelerator` — coherent MZI-array (weight-static, SVD
  mapping, reconfiguration-bound, lossy mesh).
* :class:`MRRAccelerator` — incoherent MRR weight bank (locking power,
  full-range decomposition penalty).
* :mod:`repro.baselines.electronic` — calibrated roofline models of the
  CPU / GPU / Edge TPU / FPGA platforms of Fig. 13.
* :data:`TABLE_I` — the qualitative PTC capability comparison.
"""

from repro.baselines.base import (
    TABLE_I,
    BaselineRunResult,
    PTCCapabilities,
    WeightStaticAccelerator,
    WeightStaticConfig,
)
from repro.baselines.electronic import (
    ElectronicPlatform,
    all_platforms,
    cpu_i7_9750h,
    edge_tpu,
    fpga_transformer_accelerator,
    gpu_a100,
)
from repro.baselines.mrr import (
    MRR_DECOMPOSITION_RUNS,
    MRRAccelerator,
    mrr_core_area,
    mrr_path_loss_db,
)
from repro.baselines.mzi import (
    MZIAccelerator,
    mesh_depth,
    mzi_core_area,
    mzi_path_loss_db,
    mzi_unit_area,
)
from repro.baselines.pcm import (
    PCM_DECOMPOSITION_RUNS,
    PCM_WRITE_TIME,
    PCMAccelerator,
    pcm_core_area,
    pcm_path_loss_db,
)

__all__ = [
    "BaselineRunResult",
    "ElectronicPlatform",
    "MRRAccelerator",
    "MRR_DECOMPOSITION_RUNS",
    "MZIAccelerator",
    "PCMAccelerator",
    "PCM_DECOMPOSITION_RUNS",
    "PCM_WRITE_TIME",
    "PTCCapabilities",
    "TABLE_I",
    "WeightStaticAccelerator",
    "WeightStaticConfig",
    "all_platforms",
    "cpu_i7_9750h",
    "edge_tpu",
    "fpga_transformer_accelerator",
    "gpu_a100",
    "mesh_depth",
    "mrr_core_area",
    "mrr_path_loss_db",
    "mzi_core_area",
    "mzi_path_loss_db",
    "mzi_unit_area",
    "pcm_core_area",
    "pcm_path_loss_db",
]
