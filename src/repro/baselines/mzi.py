"""MZI-array baseline accelerator (after Shen et al.).

A coherent ``k x k`` MZI mesh realises an arbitrary weight matrix via
SVD + phase decomposition and multiplies one input vector per cycle.
It supports full-range operands natively (no decomposition penalty),
but suffers the two structural costs the paper quantifies:

* **Reconfiguration-bound latency** — every weight-tile switch
  reprograms the mesh's phase shifters (the 2 us MEMS response time of
  Table III); the SVD itself is computed offline for static weights but
  makes runtime mapping of *dynamic* operands impractical, so attention
  is delegated to an MRR-bank subsystem (the paper's assumption).
* **Prohibitive laser power** — light traverses ~``2k + 1`` cascaded
  MZIs, each contributing its couplers' and phase shifters' insertion
  loss, so the loss budget grows linearly with the mesh size and the
  laser dominates total energy.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.arch.area import area_breakdown
from repro.arch.config import AcceleratorConfig, lt_base
from repro.baselines.base import (
    BaselineRunResult,
    EnergyReport,
    WeightStaticAccelerator,
    WeightStaticConfig,
)
from repro.baselines.mrr import MRRAccelerator
from repro.devices.library import DeviceLibrary, default_library
from repro.workloads.gemm import GEMMOp

#: Routing/spacing overhead on the laid-out MZI mesh.
MESH_ROUTING_FACTOR = 1.5

#: Cascade depth of a k x k SVD-capable mesh (U, Sigma, V^T).
def mesh_depth(k: int) -> int:
    return 2 * k + 1


def mzi_unit_area(library: DeviceLibrary | None = None) -> float:
    """Footprint of one MZI (2 phase shifters + 2 couplers)."""
    lib = library if library is not None else default_library()
    return 2 * lib.phase_shifter.area + 2 * lib.directional_coupler.area


def mzi_core_area(k: int, library: DeviceLibrary | None = None) -> float:
    """Area (m^2) of one k x k MZI-mesh core with converters and source."""
    lib = library if library is not None else default_library()
    n_mzis = k * k  # rectangular SVD mesh (U and V triangles + diagonal)
    mesh = n_mzis * mzi_unit_area(lib) * MESH_ROUTING_FACTOR
    converters = k * (lib.dac.area + lib.adc.area + lib.tia.area)
    detectors = 2 * k * lib.photodetector.area
    modulators = k * lib.mzm.area
    source = lib.micro_comb.area + lib.laser.area
    return mesh + converters + detectors + modulators + source


def mzi_path_loss_db(k: int, library: DeviceLibrary | None = None) -> float:
    """Per-channel loss (dB) through the input modulator and the mesh."""
    lib = library if library is not None else default_library()
    per_mzi = 2 * lib.directional_coupler.insertion_loss_db + (
        2 * lib.phase_shifter.insertion_loss_db
    )
    return lib.mzm.insertion_loss_db + mesh_depth(k) * per_mzi


def area_matched_core_count(
    reference: AcceleratorConfig | None = None, k: int = 12
) -> int:
    """MZI cores that fit the reference design's compute-area budget."""
    ref = reference if reference is not None else lt_base()
    breakdown = area_breakdown(ref).by_category
    budget = sum(
        area for cat, area in breakdown.items() if cat not in ("memory", "digital")
    )
    return max(1, math.floor(budget / mzi_core_area(k, ref.library)))


class MZIAccelerator(WeightStaticAccelerator):
    """Area-matched MZI-array baseline.

    Dynamic attention GEMMs are executed on an internal MRR-bank
    subsystem, as the paper assumes ("we assume MRR bank implements MHA
    in the MZI array as it cannot support MHA").
    """

    def __init__(
        self,
        n_cores: int | None = None,
        k: int = 12,
        bits: int = 4,
        library: DeviceLibrary | None = None,
    ) -> None:
        lib = library if library is not None else default_library()
        if n_cores is None:
            n_cores = area_matched_core_count(k=k)
        config = WeightStaticConfig(
            name="MZI-array",
            n_cores=n_cores,
            k=k,
            bits=bits,
            decomposition_runs=1,  # coherent full-range: single pass
            reconfig_time=lib.phase_shifter.response_time,
            path_loss_db=mzi_path_loss_db(k, lib),
            channels_per_core=k,  # single wavelength, k spatial inputs
            locking_power_per_core=0.0,  # MEMS shifters hold at zero power
            input_mod_energy=lib.mzm.tuning_power / 5e9,
            library=lib,
        )
        super().__init__(config)
        self.attention_subsystem = MRRAccelerator(
            n_cores=n_cores, k=k, bits=bits, library=lib
        )

    def supports(self, op: GEMMOp) -> bool:
        """Whether the MZI mesh itself can execute the op."""
        return not op.dynamic

    def op_latency(self, op: GEMMOp) -> float:
        if op.dynamic:
            return self.attention_subsystem.op_latency(op)
        return super().op_latency(op)

    def op_active_time(self, op: GEMMOp) -> float:
        if op.dynamic:
            return self.attention_subsystem.op_active_time(op)
        return super().op_active_time(op)

    def op_energy(self, op: GEMMOp) -> EnergyReport:
        if op.dynamic:
            return self.attention_subsystem.op_energy(op)
        return super().op_energy(op)

    def run(self, ops: Iterable[GEMMOp], workload: str = "trace") -> BaselineRunResult:
        ops = list(ops)
        energy = EnergyReport()
        for op in ops:
            energy = energy + self.op_energy(op)
        return BaselineRunResult(
            workload=workload,
            latency=sum(self.op_latency(op) for op in ops),
            active_time=sum(self.op_active_time(op) for op in ops),
            energy=energy,
        )
