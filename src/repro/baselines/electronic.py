"""Electronic reference platforms for the Fig. 13 cross-platform study.

The paper measures an Nvidia A100, an Intel i7-9750H, a Coral Edge TPU
and two FPGA Transformer accelerators.  Without that hardware we model
each platform with a calibrated roofline: latency from peak throughput
and an achievable-utilization factor, energy from an effective
ops-per-joule efficiency, both taken from the published operating
points the paper cites.  The models reproduce the paper's headline
ratio bands (LT saves >300x energy vs CPU, ~6.6x vs GPU, ~18x vs Edge
TPU, ~20x vs FPGA accelerators, with the highest throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.workloads.gemm import GEMMOp, total_flops
from repro.workloads.transformer import TransformerConfig, gemm_trace


@dataclass(frozen=True)
class ElectronicPlatform:
    """Roofline model of an electronic inference platform."""

    name: str
    peak_ops: float  #: ops/s at the evaluated precision
    utilization: float  #: achievable fraction of peak on these workloads
    ops_per_joule: float  #: effective end-to-end energy efficiency
    base_latency: float = 0.0  #: fixed per-inference overhead (s)

    def __post_init__(self) -> None:
        if self.peak_ops <= 0 or self.ops_per_joule <= 0:
            raise ValueError("peak throughput and efficiency must be positive")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {self.utilization}")

    def latency(self, workload: TransformerConfig | Iterable[GEMMOp]) -> float:
        """Per-inference latency (s)."""
        return self.base_latency + self._flops(workload) / (
            self.peak_ops * self.utilization
        )

    def energy(self, workload: TransformerConfig | Iterable[GEMMOp]) -> float:
        """Per-inference energy (J)."""
        return self._flops(workload) / self.ops_per_joule

    def fps(self, workload: TransformerConfig | Iterable[GEMMOp]) -> float:
        return 1.0 / self.latency(workload)

    def edp(self, workload: TransformerConfig | Iterable[GEMMOp]) -> float:
        ops = self._ops(workload)
        return self.energy(ops) * self.latency(ops)

    def _ops(self, workload) -> list[GEMMOp]:
        if isinstance(workload, TransformerConfig):
            return gemm_trace(workload)
        return list(workload)

    def _flops(self, workload) -> float:
        return float(total_flops(self._ops(workload)))


def cpu_i7_9750h() -> ElectronicPlatform:
    """Intel Core i7-9750H: ~0.4 TFLOPS AVX2 peak, tens of GFLOPs/J."""
    return ElectronicPlatform(
        name="CPU (i7-9750H)",
        peak_ops=0.4e12,
        utilization=0.1,
        ops_per_joule=2.2e10,
        base_latency=5e-3,
    )


def gpu_a100() -> ElectronicPlatform:
    """Nvidia A100 with automatic mixed precision, batch-1 inference.

    At batch 1 the GPU is kernel-launch and memory-bound (a few percent
    of peak), which is what makes the paper's EDP gap 2-3 orders of
    magnitude even though the energy gap is only ~6.6x.
    """
    return ElectronicPlatform(
        name="GPU (A100)",
        peak_ops=312e12,
        utilization=0.02,
        ops_per_joule=1.0e12,
        base_latency=1.5e-3,
    )


def edge_tpu() -> ElectronicPlatform:
    """Coral Edge TPU (4 TOPS int8, ~2 W envelope)."""
    return ElectronicPlatform(
        name="Edge TPU",
        peak_ops=4e12,
        utilization=0.25,
        ops_per_joule=3.7e11,
        base_latency=1e-3,
    )


def fpga_transformer_accelerator() -> ElectronicPlatform:
    """Domain-specific FPGA ViT accelerators (Auto-ViT-Acc / HeatViT)."""
    return ElectronicPlatform(
        name="FPGA (ViT DSA)",
        peak_ops=1.5e12,
        utilization=0.5,
        ops_per_joule=3.3e11,
        base_latency=5e-4,
    )


def all_platforms() -> list[ElectronicPlatform]:
    """The electronic comparison set of Fig. 13."""
    return [cpu_i7_9750h(), gpu_a100(), edge_tpu(), fpga_transformer_accelerator()]
