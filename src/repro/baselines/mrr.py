"""MRR-bank baseline accelerator (after Tait et al. / CrossLight).

An incoherent microring weight bank computes one ``k``-element MVM per
core per cycle: weights are held in ring transmissions (paying per-ring
*locking* power the whole time), inputs stream as intensity-modulated
WDM signals.  Two structural penalties versus DPTC (Sec. II-C):

* **Full-range decomposition** — intensity encoding is non-negative
  only; signed activations are split into positive/negative parts and
  streamed in two passes (``decomposition_runs = 2``; the weight rail
  is differential).
* **MVM, not MM** — per cycle a core retires ``k^2`` MACs versus the
  DPTC's ``k^3``.

The core count is scaled so the accelerator matches the LT-B area
budget (the paper's comparison methodology).
"""

from __future__ import annotations

import math

from repro.arch.area import area_breakdown
from repro.arch.config import DEFAULT_CLOCK, AcceleratorConfig, lt_base
from repro.baselines.base import WeightStaticAccelerator, WeightStaticConfig
from repro.devices.library import DeviceLibrary, default_library
from repro.units import UM2

#: Area overhead per ring for its locking/monitor circuit (heater driver,
#: monitor photodiode, control logic).
RING_LOCKING_CIRCUIT_AREA = 2_500 * UM2

#: Routing/waveguide overhead factor on the ring array.
RING_ARRAY_ROUTING_FACTOR = 2.0

#: Streamed activations are signed (GELU/LayerNorm outputs), so the
#: intensity-encoded operand needs a two-pass decomposition.
MRR_DECOMPOSITION_RUNS = 2


def mrr_core_area(k: int, library: DeviceLibrary | None = None) -> float:
    """Area (m^2) of one k x k MRR weight-bank core with its converters,
    locking circuitry, WDM MUX/DEMUX and light source."""
    lib = library if library is not None else default_library()
    rings = k * k * (lib.microring.area + RING_LOCKING_CIRCUIT_AREA)
    rings *= RING_ARRAY_ROUTING_FACTOR
    input_dacs = k * lib.dac.area
    weight_dacs = k * lib.dac.area  # time-multiplexed weight programming
    adcs = k * lib.adc.area
    tias = k * lib.tia.area
    pds = 2 * k * lib.photodetector.area
    wdm = 2 * k * lib.microdisk.area
    source = lib.micro_comb.area + lib.laser.area
    return rings + input_dacs + weight_dacs + adcs + tias + pds + wdm + source


def mrr_path_loss_db(k: int, library: DeviceLibrary | None = None) -> float:
    """Per-channel loss (dB): MUX/DEMUX, input modulator, and the
    through-path of the k-ring weight bank plus routing margin."""
    lib = library if library is not None else default_library()
    through_loss_per_ring = 0.1
    routing_margin = 3.0
    return (
        2 * lib.microdisk.insertion_loss_db
        + lib.microring.insertion_loss_db
        + k * through_loss_per_ring
        + routing_margin
    )


def area_matched_core_count(
    reference: AcceleratorConfig | None = None, k: int = 12
) -> int:
    """MRR cores that fit the reference design's compute-area budget.

    The budget is the reference chip minus its memory and digital
    share, which the baseline reuses unchanged (paper Sec. V-C: "we
    scale the number of PTC in baselines to match area").
    """
    ref = reference if reference is not None else lt_base()
    breakdown = area_breakdown(ref).by_category
    budget = sum(
        area for cat, area in breakdown.items() if cat not in ("memory", "digital")
    )
    return max(1, math.floor(budget / mrr_core_area(k, ref.library)))


class MRRAccelerator(WeightStaticAccelerator):
    """Area-matched MRR-bank baseline (callable like the LT models)."""

    def __init__(
        self,
        n_cores: int | None = None,
        k: int = 12,
        bits: int = 4,
        library: DeviceLibrary | None = None,
    ) -> None:
        lib = library if library is not None else default_library()
        if n_cores is None:
            n_cores = area_matched_core_count(k=k)
        config = WeightStaticConfig(
            name="MRR-bank",
            n_cores=n_cores,
            k=k,
            bits=bits,
            decomposition_runs=MRR_DECOMPOSITION_RUNS,
            reconfig_time=0.0,  # thermal retuning is overlapped/hidden
            path_loss_db=mrr_path_loss_db(k, lib),
            channels_per_core=k * k,  # k waveguides x k wavelengths
            locking_power_per_core=k * k * lib.microring.locking_power,
            input_mod_energy=lib.microring.tuning_power / DEFAULT_CLOCK,
            library=lib,
        )
        super().__init__(config)
