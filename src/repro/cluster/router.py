"""Request routing: dispatch policies and the cluster session directory.

The :class:`Router` answers one question per request — *which replica* —
under two constraints that keep cluster execution bit-identical to a
single engine:

* **Session ordering.**  A decode session's steps must execute in
  submission order.  While a session has in-flight work on its owner
  replica, every further step pins there, whatever the policy says.
* **KV locality.**  A session's K/V state lives in exactly one replica's
  :class:`~repro.serving.cache.SessionCache`.  When a policy sends a
  quiescent session elsewhere, the router reports a **migration**: the
  cluster moves the session wholesale (bits travel with it) and charges
  the traffic.  ``session_affinity`` is the policy that never volunteers
  a migration — the *affinity hit rate* (owner-routed fraction of
  steps with an existing owner) is the metric ``bench_cluster.py``
  compares against ``round_robin``.

Policies are deterministic: ``round_robin`` cycles a counter,
``least_outstanding`` breaks ties by replica id, ``session_affinity``
falls back to least-outstanding for new sessions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.replica import Replica
from repro.serving.request import ServingError


class NoHealthyReplica(ServingError):
    """Routing failed: no replica can accept the request."""


class RoutingPolicy(abc.ABC):
    """Deterministic choice among dispatchable replicas."""

    name = "policy"
    #: Sticky policies keep a session on its current owner when possible.
    sticky_sessions = False
    #: Prefix-aware policies prefer replicas already holding the
    #: session's shared prefix chain for first-time placements.
    prefix_aware = False

    @abc.abstractmethod
    def choose(self, candidates: Sequence[Replica]) -> Replica:
        """Pick one of ``candidates`` (non-empty, sorted by id)."""


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the healthy replicas in id order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._turn = -1

    def choose(self, candidates: Sequence[Replica]) -> Replica:
        self._turn += 1
        return candidates[self._turn % len(candidates)]


class LeastOutstandingPolicy(RoutingPolicy):
    """Fewest dispatched-but-uncompleted requests; ties to lowest id."""

    name = "least_outstanding"

    def choose(self, candidates: Sequence[Replica]) -> Replica:
        return min(candidates, key=lambda r: (r.outstanding, r.replica_id))


class SessionAffinityPolicy(RoutingPolicy):
    """Pin sessions to the replica holding their KV cache.

    The stickiness itself lives in :meth:`Router.route` (it needs the
    directory); this policy only decides *new* placements, delegating to
    a load-balancing fallback so fresh sessions spread across the fleet.
    """

    name = "session_affinity"
    sticky_sessions = True

    def __init__(self, fallback: RoutingPolicy | None = None) -> None:
        self.fallback = fallback if fallback is not None else LeastOutstandingPolicy()

    def choose(self, candidates: Sequence[Replica]) -> Replica:
        return self.fallback.choose(candidates)


class CacheAwarePolicy(RoutingPolicy):
    """Place sessions where their shared prefix pages already live.

    First-time placements of a session forked from a shared prefix
    prefer the replicas whose sessions already hold that chain (the
    tier's holder directory — co-located forks make the fleet's warm
    state explicit for operators even though chain pages are shared
    either way), falling back to least-outstanding load balancing when
    nobody holds the prefix.  Sticky like ``session_affinity``, so
    placed sessions never migrate their KV state.
    """

    name = "cache_aware"
    sticky_sessions = True
    prefix_aware = True

    def __init__(self, fallback: RoutingPolicy | None = None) -> None:
        self.fallback = fallback if fallback is not None else LeastOutstandingPolicy()

    def choose(self, candidates: Sequence[Replica]) -> Replica:
        return self.fallback.choose(candidates)


#: Registry of the built-in policies, by CLI/benchmark name.
POLICIES: dict[str, Callable[[], RoutingPolicy]] = {
    "round_robin": RoundRobinPolicy,
    "least_outstanding": LeastOutstandingPolicy,
    "session_affinity": SessionAffinityPolicy,
    "cache_aware": CacheAwarePolicy,
}


def make_policy(policy: "str | RoutingPolicy") -> RoutingPolicy:
    """A policy instance from its registry name (instances pass through)."""
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {policy!r}; known: {sorted(POLICIES)}"
        ) from None


@dataclass(frozen=True)
class RouteDecision:
    """Where one request goes, and what the routing implied."""

    replica: Replica
    #: True/False for steps of sessions with an existing owner; None for
    #: sessionless requests and first-time session placements.
    affinity_hit: bool | None = None
    #: Owner the session must be migrated away from (None = no move).
    migrate_from: Replica | None = None
    #: The request opened a new session placement.
    new_session: bool = False


class Router:
    """Session directory + policy dispatch (cluster holds the lock)."""

    def __init__(self, policy: "str | RoutingPolicy") -> None:
        self.policy = make_policy(policy)
        #: session id -> owning replica id.
        self.directory: dict[str, int] = {}
        #: session id -> in-flight (dispatched, uncompleted) step count.
        self._inflight: dict[str, int] = {}

    # -- in-flight accounting (cluster calls these under its lock) -----------
    def begin(self, session_id: str | None) -> None:
        if session_id is not None:
            self._inflight[session_id] = self._inflight.get(session_id, 0) + 1

    def finish(self, session_id: str | None) -> None:
        if session_id is not None:
            remaining = self._inflight.get(session_id, 0) - 1
            if remaining > 0:
                self._inflight[session_id] = remaining
            else:
                self._inflight.pop(session_id, None)

    def inflight(self, session_id: str) -> int:
        return self._inflight.get(session_id, 0)

    def sessions_owned_by(self, replica_id: int) -> list[str]:
        """Sorted session ids the directory places on ``replica_id``."""
        return sorted(
            sid for sid, rid in self.directory.items() if rid == replica_id
        )

    def forget_owner(self, session_id: str) -> None:
        self.directory.pop(session_id, None)

    # -- the routing decision ------------------------------------------------
    def route(
        self,
        replicas: dict[int, Replica],
        session_id: str | None,
        prefix_holders: "Sequence[int] | None" = None,
    ) -> RouteDecision:
        """Decide placement for one request at dispatch time.

        ``replicas`` is the full fleet by id; dispatchable candidates
        are the HEALTHY ones.  ``prefix_holders`` names the replicas
        already holding the session's shared prefix chain — a
        prefix-aware policy narrows first-time placements to them.
        Raises :class:`NoHealthyReplica` when no placement is possible.
        """
        candidates = sorted(
            (r for r in replicas.values() if r.accepts_new),
            key=lambda r: r.replica_id,
        )
        if session_id is None:
            if not candidates:
                raise NoHealthyReplica("no healthy replica accepts new work")
            return RouteDecision(self.policy.choose(candidates))

        owner_id = self.directory.get(session_id)
        owner = replicas.get(owner_id) if owner_id is not None else None
        if owner is not None and not owner.alive:
            owner = None  # failed/stopped owners are re-placed below

        if owner is not None:
            # Ordering constraint: in-flight steps pin to the owner even
            # when it is draining (it still completes what it holds).
            if self.inflight(session_id) > 0:
                return RouteDecision(owner, affinity_hit=True)
            if self.policy.sticky_sessions and owner.accepts_new:
                return RouteDecision(owner, affinity_hit=True)
            if not candidates:
                # An accepting owner would be among the candidates, so
                # the quiescent session has nowhere at all to go.
                raise NoHealthyReplica("no healthy replica accepts new work")
            chosen = self.policy.choose(candidates)
            if chosen is owner:
                return RouteDecision(owner, affinity_hit=True)
            self.directory[session_id] = chosen.replica_id
            return RouteDecision(
                chosen, affinity_hit=False, migrate_from=owner
            )

        if not candidates:
            raise NoHealthyReplica("no healthy replica accepts new work")
        pool = candidates
        if self.policy.prefix_aware and prefix_holders:
            holding = [r for r in candidates if r.replica_id in set(prefix_holders)]
            if holding:
                pool = holding
        chosen = self.policy.choose(pool)
        self.directory[session_id] = chosen.replica_id
        return RouteDecision(chosen, new_session=True)

    def rehome(
        self, session_id: str, replicas: dict[int, Replica]
    ) -> Replica:
        """Re-place a session whose owner failed or drained away.

        Uses the policy's view of the healthy fleet; updates the
        directory.  Raises :class:`NoHealthyReplica` when nobody can
        take it.
        """
        candidates = sorted(
            (r for r in replicas.values() if r.accepts_new),
            key=lambda r: r.replica_id,
        )
        if not candidates:
            raise NoHealthyReplica(
                f"no healthy replica to re-home session {session_id!r}"
            )
        chosen = self.policy.choose(candidates)
        self.directory[session_id] = chosen.replica_id
        return chosen
