"""Multi-replica serving: routing, session affinity, SLO autoscaling.

The scale-out layer over :mod:`repro.serving`: a
:class:`ServingCluster` fronts N :class:`ServingEngine` replicas (each
wrapping its own sharded photonic accelerator), a :class:`Router`
places requests under ``round_robin`` / ``least_outstanding`` /
``session_affinity`` policies with a cluster-level session directory
and wholesale KV migration, an :class:`Autoscaler` grows and drains the
fleet against backlog and latency-SLO signals, and
:class:`ClusterMetrics` aggregates per-replica metrics into fleet
throughput, percentiles, affinity hit rate, and a deterministic event
log.  Everything runs under the shared
:class:`~repro.serving.clock.SimulatedClock` in manual-step mode (zero
sleeps; a :class:`ServiceModel` supplies virtual batch service times)
as well as wall-clock mode.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerPolicy
from repro.cluster.cluster import ClusterHandle, ServingCluster
from repro.cluster.config import ClusterConfig
from repro.cluster.loadgen import run_virtual_open_loop, run_virtual_schedule
from repro.cluster.metrics import ClusterEvent, ClusterMetrics, ClusterRecord
from repro.cluster.replica import (
    ALIVE_STATES,
    DRAINING,
    FAILED,
    HEALTHY,
    STOPPED,
    Replica,
    ServiceModel,
)
from repro.cluster.router import (
    POLICIES,
    CacheAwarePolicy,
    LeastOutstandingPolicy,
    NoHealthyReplica,
    RouteDecision,
    Router,
    RoundRobinPolicy,
    RoutingPolicy,
    SessionAffinityPolicy,
    make_policy,
)
from repro.cluster.store import (
    KVStore,
    LocalKVStore,
    ShardedKVStore,
    SharedCacheTier,
)

__all__ = [
    "ALIVE_STATES",
    "Autoscaler",
    "AutoscalerPolicy",
    "CacheAwarePolicy",
    "ClusterConfig",
    "ClusterEvent",
    "ClusterHandle",
    "ClusterMetrics",
    "ClusterRecord",
    "DRAINING",
    "FAILED",
    "HEALTHY",
    "KVStore",
    "LeastOutstandingPolicy",
    "LocalKVStore",
    "NoHealthyReplica",
    "POLICIES",
    "Replica",
    "RouteDecision",
    "Router",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "STOPPED",
    "ServiceModel",
    "ServingCluster",
    "SessionAffinityPolicy",
    "ShardedKVStore",
    "SharedCacheTier",
    "make_policy",
    "run_virtual_open_loop",
    "run_virtual_schedule",
]
