"""Frozen cluster configuration (fleet knobs + embedded engine config).

:class:`ClusterConfig` is the cluster-level counterpart of
:class:`~repro.serving.config.EngineConfig`: fleet size, routing
policy, retry/drain behaviour, the virtual-time
:class:`~repro.cluster.replica.ServiceModel`, and the shared cache
tier's knobs, with one ``engine`` sub-config applied to every replica.
Accepted by :class:`~repro.cluster.cluster.ServingCluster` (the legacy
keyword arguments keep working through the same warn-once deprecation
shim) and by the ``repro cluster-bench`` CLI via ``--config`` JSON.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cluster.replica import ServiceModel
from repro.cluster.router import POLICIES
from repro.serving.config import EngineConfig


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a serving cluster is built from.

    Attributes:
        replicas: initial fleet size.
        policy: routing policy registry name (see
            :data:`repro.cluster.router.POLICIES`).
        engine: per-replica :class:`EngineConfig`.
        max_retries: re-dispatches after a non-failover error.
        close_executors: close each servable's photonic executor on
            replica shutdown.
        service_model: virtual per-batch service times (manual mode
            only); mutually exclusive with ``engine.iteration_cost``.
        shared_cache: build a fleet-wide
            :class:`~repro.cluster.store.SharedCacheTier` — prompt
            memo hits survive any routing policy, and decode sessions
            can fork shared prefix chains.
        share_prefixes: adopt registered prefixes as shared tier-owned
            chains (pages charged once fleet-wide).  ``False``
            materializes each session's prompt privately in its
            replica's pool — the unshared baseline.
        memo_bytes: per-replica *private* memo cache budget (``None``
            disables replica-level memoization — the pre-tier
            behaviour).
        memo_ttl_s / prefix_ttl_s: tier entry lifetimes against the
            cluster clock (``None`` = no expiry).
    """

    replicas: int = 2
    policy: str = "round_robin"
    engine: EngineConfig = field(default_factory=EngineConfig)
    max_retries: int = 1
    close_executors: bool = True
    service_model: ServiceModel | None = None
    shared_cache: bool = False
    share_prefixes: bool = True
    memo_bytes: int | None = None
    memo_ttl_s: float | None = None
    prefix_ttl_s: float | None = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"need at least 1 replica, got {self.replicas}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; known: "
                f"{sorted(POLICIES)}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.memo_bytes is not None and self.memo_bytes < 0:
            raise ValueError(f"memo_bytes must be >= 0, got {self.memo_bytes}")
        if self.service_model is not None and self.engine.iteration_cost is not None:
            raise ValueError(
                "pass service_model or engine.iteration_cost, not both "
                "(they are competing virtual-time models)"
            )
        for name in ("memo_ttl_s", "prefix_ttl_s"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    def replace(self, **changes) -> "ClusterConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-serializable form (nested engine / service_model maps)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ClusterConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(data)
        engine = kwargs.get("engine")
        if isinstance(engine, dict):
            kwargs["engine"] = EngineConfig.from_dict(engine)
        model = kwargs.get("service_model")
        if isinstance(model, dict):
            kwargs["service_model"] = ServiceModel(**model)
        return cls(**kwargs)
