"""The cluster front-end: N serving-engine replicas behind one submit().

:class:`ServingCluster` is the scale-out layer over
:class:`~repro.serving.engine.ServingEngine`: a replica **factory**
builds one servable per replica (each wrapping its own sharded photonic
accelerator — build them with equal seeds and every replica computes
bit-identical results), a :class:`~repro.cluster.router.Router` places
each request under a pluggable policy, and an optional
:class:`~repro.cluster.autoscaler.Autoscaler` grows/drains the fleet
against backlog and latency-SLO signals.

Correctness invariants the routing layer maintains:

* **Bit-exactness.**  Per-request outputs are independent of batch
  composition (the PR-4 servable invariant) and, with an equal-seed
  factory, independent of *which* replica ran them.  Decode sessions
  additionally require their steps to execute in order against their
  own KV state — the router pins in-flight sessions and migrates
  quiescent ones wholesale, so any policy is bit-identical to a single
  sequential engine (``benchmarks/bench_cluster.py`` gates this).
* **No lost handles.**  Failing a replica evicts its queued requests
  and re-dispatches them to survivors; its sessions are re-homed with
  their KV state.  Every submitted :class:`ClusterHandle` eventually
  resolves or fails with the real error.

Two execution regimes, like the engine underneath:

* **Manual mode** (a :class:`~repro.serving.clock.SimulatedClock`):
  :meth:`step` drives every replica deterministically, zero sleeps.  An
  optional :class:`~repro.cluster.replica.ServiceModel` supplies
  virtual per-batch service times, making fleet throughput, latency
  percentiles, and autoscaler trajectories exact functions of the seed
  — replicas overlap in *virtual* time, so the scaling curve needs no
  wall-clock parallelism.
* **Wall-clock mode**: each replica runs its own worker thread;
  completions propagate through handle callbacks.  Call
  :meth:`maintain` periodically (or :meth:`close`) to finalize drains.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.autoscaler import Autoscaler, AutoscalerPolicy
from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import ClusterEvent, ClusterMetrics, ClusterRecord
from repro.cluster.replica import (
    DRAINING,
    FAILED,
    HEALTHY,
    STOPPED,
    Replica,
    ServiceModel,
)
from repro.cluster.router import NoHealthyReplica, Router, RoutingPolicy
from repro.cluster.store import SharedCacheTier
from repro.obs.trace import NULL_TRACER
from repro.serving.batcher import BatchingPolicy
from repro.serving.cache import MISS, SessionCache
from repro.serving.clock import WallClock
from repro.serving.config import EngineConfig, warn_deprecated_kwargs
from repro.serving.request import EngineClosed, RequestHandle, ServingError
from repro.serving.servable import Servable


class ClusterHandle(RequestHandle):
    """Future-style view of one cluster request (routing-aware)."""

    def __init__(self, request_id: int, arrival: float) -> None:
        super().__init__(request_id, arrival)
        self.replica_id: int | None = None  #: replica that served it
        self.retries = 0  #: re-dispatch count (failover/retry)


@dataclass
class _InFlight:
    """Cluster-side record of one dispatched request (re-routable)."""

    handle: ClusterHandle
    payload: Any
    cache_key: Any = None
    session_id: str | None = None
    tenant: str | None = None
    prefix_id: str | None = None
    retries: int = field(default=0)
    #: Open cluster.request trace span (None with tracing disabled).
    span: Any = None


class ServingCluster:
    """Multi-replica serving with routing, failover, and autoscaling.

    Args:
        factory: ``factory(replica_id) -> Servable`` builder; called for
            the initial fleet and every autoscaler scale-up.  Build with
            a fixed seed for cross-replica bit-exactness.
        config: a :class:`~repro.cluster.config.ClusterConfig` carrying
            every construction knob (the preferred API).  The legacy
            keyword arguments below keep working through a deprecation
            shim that warns once; mixing them with ``config`` is an
            error.
        tier: an externally-built
            :class:`~repro.cluster.store.SharedCacheTier` (e.g. backed
            by a custom :class:`~repro.cluster.store.KVStore`); by
            default ``config.shared_cache`` builds a local one on the
            cluster clock.
        replicas: initial fleet size.
        policy: routing policy name (``round_robin`` /
            ``least_outstanding`` / ``session_affinity`` /
            ``cache_aware``) or a :class:`RoutingPolicy` instance.
        batching / max_batch_size / max_wait_us: per-replica batching
            policy (same knobs as :class:`ServingEngine`).
        queue_depth: per-replica admission bound.  A full replica queue
            surfaces :class:`~repro.serving.request.QueueFull` to the
            submitter — cluster-level backpressure.
        clock: shared time source; a :class:`SimulatedClock` selects
            manual stepping.
        service_model: virtual per-batch service times (manual mode
            only).
        autoscaler: an :class:`AutoscalerPolicy` to enable scaling.
        tracer: an :class:`~repro.obs.trace.Tracer` for cluster.request
            spans (route / failover / retry / complete events), a root
            ``cluster`` span carrying fleet lifecycle events, and —
            passed through to every replica engine — the full
            request -> iteration -> shard -> stage chain beneath.
            Defaults to the no-op :data:`~repro.obs.trace.NULL_TRACER`.
        recorder: an optional
            :class:`~repro.obs.recorder.FlightRecorder`, shared with
            every replica engine.  :meth:`fail_replica` freezes a
            postmortem bundle (recent spans/events + the fleet registry
            and snapshot) — fault injection as a first-class
            observability scenario; engine-level dooms and serving
            errors bundle through the same recorder.
        slo_monitor: an optional
            :class:`~repro.obs.timeseries.SLOMonitor`; :meth:`maintain`
            ticks it each cycle (sampling its
            :class:`~repro.obs.timeseries.TimeSeriesRecorder` and
            appending burn-rate transitions to the alert ledger), and
            the autoscaler — when both are configured — treats firing
            alerts as a scale-up signal.
        max_retries: re-dispatches after a non-failover execution error
            before the handle fails.
        close_executors: close each servable's photonic executor when
            its replica shuts down.
        scheduler: per-replica batch-composition mode (``"request"`` or
            ``"continuous"``), passed to every
            :class:`~repro.serving.engine.ServingEngine` — iteration-level
            scheduling with paged KV sessions that migrate and fail
            over wholesale.
        iteration_cost: per-replica
            :class:`~repro.serving.scheduler.IterationCost` (manual mode
            only); an alternative to ``service_model`` that advances the
            shared simulated clock per executed iteration.
    """

    def __init__(
        self,
        factory: Callable[[int], Servable],
        *,
        config: ClusterConfig | None = None,
        clock=None,
        autoscaler: AutoscalerPolicy | None = None,
        tier: SharedCacheTier | None = None,
        tracer=None,
        recorder=None,
        slo_monitor=None,
        replicas: int | None = None,
        policy: "str | RoutingPolicy | None" = None,
        batching: BatchingPolicy | None = None,
        max_batch_size: int | None = None,
        max_wait_us: float | None = None,
        queue_depth: int | None = None,
        service_model: ServiceModel | None = None,
        max_retries: int | None = None,
        close_executors: bool | None = None,
        scheduler: str | None = None,
        iteration_cost=None,
    ) -> None:
        legacy = {
            name
            for name, value in (
                ("replicas", replicas),
                ("policy", policy),
                ("batching", batching),
                ("max_batch_size", max_batch_size),
                ("max_wait_us", max_wait_us),
                ("queue_depth", queue_depth),
                ("service_model", service_model),
                ("max_retries", max_retries),
                ("close_executors", close_executors),
                ("scheduler", scheduler),
                ("iteration_cost", iteration_cost),
            )
            if value is not None
        }
        if config is not None and legacy:
            raise ValueError(
                "pass either config=ClusterConfig(...) or the legacy knobs "
                f"{sorted(legacy)}, not both"
            )
        # A RoutingPolicy *instance* routes as given; the config records
        # its registry name (or the default for unregistered customs).
        policy_obj: "str | RoutingPolicy | None" = policy
        if config is None:
            if batching is not None and (
                max_batch_size is not None or max_wait_us is not None
            ):
                raise ValueError(
                    "pass either batching or the individual knobs, not both"
                )
            if legacy:
                warn_deprecated_kwargs("ServingCluster", legacy)
            coalesced = (
                batching
                if batching is not None
                else BatchingPolicy(
                    max_batch_size=8 if max_batch_size is None else max_batch_size,
                    max_wait_us=1_000.0 if max_wait_us is None else max_wait_us,
                )
            )
            from repro.cluster.router import POLICIES

            policy_name = "round_robin"
            if isinstance(policy, str):
                policy_name = policy
            elif policy is not None and policy.name in POLICIES:
                policy_name = policy.name
            config = ClusterConfig(
                replicas=2 if replicas is None else replicas,
                policy=policy_name,
                engine=EngineConfig(
                    max_batch_size=coalesced.max_batch_size,
                    max_wait_us=coalesced.max_wait_us,
                    queue_depth=64 if queue_depth is None else queue_depth,
                    scheduler="request" if scheduler is None else scheduler,
                    iteration_cost=iteration_cost,
                ),
                service_model=service_model,
                max_retries=1 if max_retries is None else max_retries,
                close_executors=True if close_executors is None else close_executors,
            )
        self.config = config
        self.factory = factory
        self.batching = config.engine.batching
        self.queue_depth = config.engine.queue_depth
        self.clock = clock if clock is not None else WallClock()
        self.manual = not getattr(self.clock, "real", True)
        if config.service_model is not None and not self.manual:
            raise ValueError(
                "service_model needs a SimulatedClock (virtual time is "
                "only defined in manual mode)"
            )
        self.service_model = config.service_model
        self.scheduler = config.engine.scheduler
        self.iteration_cost = config.engine.iteration_cost
        self.max_retries = config.max_retries
        self._close_executors = config.close_executors
        self.metrics = ClusterMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recorder = recorder
        self.slo_monitor = slo_monitor
        #: Root span carrying fleet lifecycle events (scale_up / drain /
        #: retire / replica_failed); None with tracing disabled.
        self._span = (
            self.tracer.start_span("cluster") if self.tracer.enabled else None
        )
        self.router = Router(
            policy_obj if policy_obj is not None else config.policy
        )
        self.tier: SharedCacheTier | None = tier
        if self.tier is None and config.shared_cache:
            self.tier = SharedCacheTier(
                clock=self.clock,
                memo_capacity_bytes=config.memo_bytes,
                memo_ttl_s=config.memo_ttl_s,
                prefix_ttl_s=config.prefix_ttl_s,
            )
        #: Registered shared prefixes: prefix id -> prompt tokens.
        self._prefixes: dict[str, int] = {}
        #: Sessions forked from a tier chain (holder-refcount custody).
        self._session_prefix: dict[str, str] = {}
        self._replicas: dict[int, Replica] = {}
        self._next_replica_id = 0
        self._next_request_id = 0
        self._lock = threading.RLock()
        self._running = False
        self._closed = False
        for _ in range(config.replicas):
            self._add_replica_locked()
        self.autoscaler = (
            Autoscaler(autoscaler, self, slo_monitor=slo_monitor)
            if autoscaler is not None
            else None
        )

    # -- fleet management ----------------------------------------------------
    def _add_replica_locked(self) -> Replica:
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        # With a shared tier, memoization lives fleet-wide; otherwise
        # memo_bytes buys each replica a private memo cache (the
        # pre-tier baseline whose hits routing can forfeit).
        memo_cache = (
            SessionCache(capacity_bytes=self.config.memo_bytes)
            if self.config.memo_bytes is not None and self.tier is None
            else None
        )
        replica = Replica(
            replica_id,
            self.factory(replica_id),
            config=self.config.engine,
            clock=self.clock,
            close_executor=self._close_executors,
            memo_cache=memo_cache,
            tracer=self.tracer,
            recorder=self.recorder,
        )
        self._replicas[replica_id] = replica
        if self._running:
            replica.engine.start()
        return replica

    def _trace_event(self, kind: str, **attrs: Any) -> None:
        """Mirror one fleet lifecycle event onto the root cluster span."""
        if self._span is not None:
            self._span.add_event(kind, **attrs)

    def _healthy_locked(self) -> list[Replica]:
        return sorted(
            (r for r in self._replicas.values() if r.state == HEALTHY),
            key=lambda r: r.replica_id,
        )

    def _scale_up_locked(self, now: float, reason: str) -> Replica:
        replica = self._add_replica_locked()
        self.metrics.record_event(
            ClusterEvent(
                now, "scale_up", replica.replica_id,
                len(self._healthy_locked()), reason,
            )
        )
        self._trace_event(
            "scale_up", replica_id=replica.replica_id, reason=reason
        )
        return replica

    def _begin_drain_locked(self, replica: Replica, now: float, reason: str) -> None:
        replica.start_drain()
        self.metrics.record_event(
            ClusterEvent(
                now, "drain", replica.replica_id,
                len(self._healthy_locked()), reason,
            )
        )
        self._trace_event(
            "drain", replica_id=replica.replica_id, reason=reason
        )

    def add_replica(self, reason: str = "manual") -> Replica:
        """Grow the fleet by one replica (records a scale_up event)."""
        with self._lock:
            if self._closed:
                raise EngineClosed("cluster is closed")
            return self._scale_up_locked(self.clock.now(), reason)

    def drain_replica(self, replica_id: int, reason: str = "manual") -> None:
        """Start a graceful drain (retired once its backlog is empty)."""
        with self._lock:
            self._begin_drain_locked(
                self._replicas[replica_id], self.clock.now(), reason
            )

    @property
    def replicas(self) -> dict[int, Replica]:
        with self._lock:
            return dict(self._replicas)

    @property
    def fleet_size(self) -> int:
        """Healthy replicas (the autoscaler's notion of fleet size)."""
        with self._lock:
            return len(self._healthy_locked())

    @property
    def pending(self) -> int:
        """Requests admitted to replica queues but not yet dispatched."""
        with self._lock:
            return sum(
                r.engine.pending for r in self._replicas.values() if r.alive
            )

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ServingCluster":
        """Launch every replica's worker thread (no-op in manual mode)."""
        with self._lock:
            if self._closed:
                raise EngineClosed("cluster already closed")
            self._running = True
            replicas = list(self._replicas.values())
        for replica in replicas:
            if replica.alive:
                replica.engine.start()
        return self

    def __enter__(self) -> "ServingCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, *, drain: bool = True) -> None:
        """Shut the fleet down; ``drain=False`` fails pending handles."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            replicas = sorted(self._replicas.values(), key=lambda r: r.replica_id)
        for replica in replicas:
            if not replica.engine.closed:
                replica.engine.close(drain=drain)
        if self._span is not None:
            self.tracer.end(self._span)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- shared prefixes -----------------------------------------------------
    def register_prefix(self, prefix_id: str, prompt_len: int) -> None:
        """Register a shared system prompt of ``prompt_len`` tokens.

        Sessions submitted with ``prefix_id=`` fork from it: with a
        shared tier (and ``share_prefixes``) they adopt the tier's
        refcounted :class:`~repro.serving.cache.PrefixChain` — pages
        charged once fleet-wide; otherwise each session materializes
        the prompt privately in its replica's pool.  Idempotent for a
        matching ``prompt_len``.
        """
        if prompt_len < 1:
            raise ValueError(f"prompt_len must be >= 1, got {prompt_len}")
        with self._lock:
            known = self._prefixes.get(prefix_id)
            if known is not None and known != prompt_len:
                raise ValueError(
                    f"prefix {prefix_id!r} already registered with "
                    f"{known} tokens, not {prompt_len}"
                )
            self._prefixes[prefix_id] = prompt_len
            if self.tier is not None and self.config.share_prefixes:
                template = next(
                    (
                        r.session_cache
                        for r in self._replicas.values()
                        if r.session_cache is not None
                    ),
                    None,
                )
                if template is None or template.config is None:
                    raise ValueError(
                        "prefix sharing needs replicas with a decoder "
                        "SessionCache (a DecodeServable fleet)"
                    )
                self.tier.ensure_prefix(
                    prefix_id,
                    prompt_len,
                    config=template.config,
                    block_size=template.block_size,
                    kv_bits=template.kv_bits,
                )

    def _ensure_prefix_session_locked(
        self, record: _InFlight, replica: Replica
    ) -> None:
        """Open the session's prompt state on its replica, if absent."""
        cache = replica.session_cache
        if cache is None or cache.has_session(record.session_id):
            return
        prompt_len = self._prefixes[record.prefix_id]
        if self.tier is not None and self.config.share_prefixes:
            chain = self.tier.acquire_prefix(
                record.prefix_id, replica.replica_id
            )
            cache.adopt_prefix(record.session_id, chain)
            self._session_prefix[record.session_id] = record.prefix_id
            self.metrics.record_prefix_adoption(shared=True)
        else:
            cache.open_session(record.session_id, prompt_len=prompt_len)
            self.metrics.record_prefix_adoption(shared=False)

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        payload: Any,
        *,
        cache_key: Any = None,
        session_id: str | None = None,
        tenant: str | None = None,
        prefix_id: str | None = None,
    ) -> ClusterHandle:
        """Admit one request; the router picks its replica.

        ``cache_key`` consults the shared tier (when configured) before
        routing — a fleet-wide hit resolves immediately on whatever
        replica computed it first, under any policy.  ``prefix_id``
        (with ``session_id``) forks the session from a registered
        shared prompt prefix at first dispatch.

        Raises :class:`QueueFull` when the chosen replica's queue is at
        capacity (cluster-level backpressure) and
        :class:`NoHealthyReplica` when routing finds no target.
        """
        with self._lock:
            if self._closed:
                raise EngineClosed("cluster is closed")
            if prefix_id is not None and prefix_id not in self._prefixes:
                raise ValueError(
                    f"unregistered prefix {prefix_id!r}; call "
                    "register_prefix() first"
                )
            if prefix_id is not None and session_id is None:
                raise ValueError("prefix_id needs a session_id to fork")
            self._next_request_id += 1
            handle = ClusterHandle(self._next_request_id - 1, self.clock.now())
            span = None
            if self.tracer.enabled:
                span = self.tracer.start_span(
                    "cluster.request",
                    parent=self._span,
                    request_id=handle.request_id,
                    session_id=session_id,
                    tenant=tenant,
                )
                span.add_event("submit")
            if cache_key is not None and self.tier is not None:
                hit = self.tier.get_memo(cache_key)
                if hit is not MISS:
                    now = handle.arrival
                    handle._resolve(
                        hit, started=now, finished=now,
                        batch_size=0, cache_hit=True,
                    )
                    self.metrics.record_request(
                        ClusterRecord(
                            arrival=now, started=now, finished=now,
                            replica_id=-1, batch_size=0,
                            cache_hit=True, tenant=tenant,
                        )
                    )
                    if span is not None:
                        span.set_attr("cache_hit", True)
                        span.add_event("complete", tier_hit=True)
                        self.tracer.end(span)
                    return handle
        record = _InFlight(
            handle, payload,
            cache_key=cache_key, session_id=session_id, tenant=tenant,
            prefix_id=prefix_id, span=span,
        )
        self._dispatch(record)
        return handle

    def _dispatch(self, record: _InFlight) -> None:
        """Route and enqueue one record (initial submit or re-dispatch)."""
        with self._lock:
            prefix_holders = None
            if record.prefix_id is not None and self.tier is not None:
                prefix_holders = self.tier.replicas_holding(record.prefix_id)
            decision = self.router.route(
                self._replicas, record.session_id, prefix_holders
            )
            replica = decision.replica
            if decision.migrate_from is not None:
                self._migrate_locked(
                    record.session_id, decision.migrate_from, replica
                )
            if record.prefix_id is not None:
                self._ensure_prefix_session_locked(record, replica)
            engine_handle = replica.engine.submit(
                record.payload,
                cache_key=record.cache_key,
                session_id=record.session_id,
                block=False,
            )
            self.router.begin(record.session_id)
            replica.outstanding += 1
            replica.dispatched += 1
            record.handle.replica_id = replica.replica_id
            replica.inflight[engine_handle] = record
            self.metrics.record_dispatch(
                replica.replica_id,
                tenant=record.tenant,
                affinity_hit=decision.affinity_hit,
                new_session=decision.new_session,
            )
            if record.span is not None:
                record.span.add_event(
                    "route",
                    replica_id=replica.replica_id,
                    affinity_hit=decision.affinity_hit,
                    migrated=decision.migrate_from is not None,
                )
        engine_handle.add_done_callback(
            lambda eh, rec=record, rep=replica: self._on_done(rep, rec, eh)
        )

    def _migrate_locked(
        self, session_id: str, source: Replica, target: Replica
    ) -> None:
        """Move one quiescent session's KV state between replicas."""
        source_cache = source.session_cache
        target_cache = target.session_cache
        if source_cache is None or not source_cache.has_session(session_id):
            # Directory entry without materialized KV (first step never
            # executed, or a cacheless servable): only the placement
            # moved — no KV traffic, so the migration ledger stays
            # untouched.
            return
        nbytes = source_cache.session_bytes(session_id)
        session = source_cache.pop_session(session_id)
        if target_cache is not None:
            target_cache.adopt_session(session)
        if session.prefix_id is not None and self.tier is not None:
            # Shared prefix pages don't travel (tier custody) but the
            # holder directory follows the session for cache_aware
            # placement and failover release accounting.
            self.tier.move_holder(
                session.prefix_id, source.replica_id, target.replica_id
            )
        self.metrics.record_migration(nbytes)

    # -- completion propagation ----------------------------------------------
    def _on_done(self, replica: Replica, record: _InFlight, engine_handle) -> None:
        """Handle callback: resolve, fail over, or retry one request."""
        with self._lock:
            replica.inflight.pop(engine_handle, None)
            replica.outstanding -= 1
            self.router.finish(record.session_id)
            error = engine_handle._error
            if error is None:
                if (
                    record.cache_key is not None
                    and self.tier is not None
                    and not engine_handle.cache_hit
                ):
                    # Publish the freshly computed result fleet-wide so
                    # any replica's next request for this key hits.
                    self.tier.put_memo(record.cache_key, engine_handle._value)
                batch_size = engine_handle.batch_size or 0
                if self.service_model is not None and not engine_handle.cache_hit:
                    started, finished = replica.virtual_stamp(
                        max(batch_size, 1), self.clock.now(), self.service_model
                    )
                else:
                    arrival = record.handle.arrival
                    started = (
                        engine_handle.started
                        if engine_handle.started is not None
                        else arrival
                    )
                    finished = (
                        engine_handle.finished
                        if engine_handle.finished is not None
                        else arrival
                    )
                record.handle.replica_id = replica.replica_id
                record.handle._resolve(
                    engine_handle._value,
                    started=started,
                    finished=finished,
                    batch_size=batch_size,
                    cache_hit=engine_handle.cache_hit,
                )
                self.metrics.record_request(
                    ClusterRecord(
                        arrival=record.handle.arrival,
                        started=started,
                        finished=finished,
                        replica_id=replica.replica_id,
                        batch_size=batch_size,
                        cache_hit=engine_handle.cache_hit,
                        tenant=record.tenant,
                    )
                )
                if record.span is not None:
                    record.span.add_event(
                        "complete",
                        replica_id=replica.replica_id,
                        cache_hit=engine_handle.cache_hit,
                    )
                    self.tracer.end(record.span)
                return
            if record.handle.done():
                return  # already settled (double-failure race)
            # A closing cluster neither fails over nor retries: the
            # EngineClosed from each replica's shutdown is the final
            # answer for its pending handles.
            failover = (
                isinstance(error, EngineClosed) or replica.state == FAILED
            ) and not self._closed
            retryable = (
                not failover
                and not self._closed
                and record.retries < self.max_retries
            )
        if failover or retryable:
            if failover:
                self.metrics.record_failover()
                if record.span is not None:
                    record.span.add_event(
                        "failover", from_replica=replica.replica_id
                    )
            else:
                record.retries += 1
                record.handle.retries = record.retries
                self.metrics.record_retry()
                if record.span is not None:
                    record.span.add_event("retry", attempt=record.retries)
            try:
                self._dispatch(record)
                return
            except ServingError as redispatch_error:
                error = redispatch_error
        record.handle._fail(
            error,
            started=engine_handle.started,
            finished=engine_handle.finished,
            batch_size=engine_handle.batch_size,
        )
        self.metrics.record_failure()
        if record.span is not None:
            record.span.add_event("failed", error=type(error).__name__)
            self.tracer.end(record.span)

    def release_session(self, session_id: str) -> int:
        """Retire a finished decode session fleet-wide.

        Frees the owning replica's paged KV state (its
        :class:`~repro.serving.cache.BlockPool` pages return to the
        free list), drops any continuous-scheduler bookkeeping there,
        and forgets the directory entry.  Returns the KV bytes freed.
        Call once the session's submitted steps have resolved.
        """
        with self._lock:
            owner_id = self.router.directory.get(session_id)
            owner = self._replicas.get(owner_id) if owner_id is not None else None
            self.router.forget_owner(session_id)
            prefix_id = self._session_prefix.pop(session_id, None)
            if prefix_id is not None and self.tier is not None and owner is not None:
                # Drop the tier refcount before the replica closes the
                # session (which releases only the private tail pages).
                self.tier.release_prefix(prefix_id, owner.replica_id)
            if owner is None or owner.engine.closed:
                return 0
            return owner.engine.release_session(session_id)

    # -- fault injection & failover ------------------------------------------
    def fail_replica(self, replica_id: int) -> int:
        """Inject a replica failure; returns re-dispatched request count.

        Queued requests are evicted and re-routed (their handles stay
        pending until a survivor serves them), sessions are re-homed
        with their KV state, and the failure lands in the event log.  A
        wall-clock batch already executing completes normally first.
        """
        with self._lock:
            replica = self._replicas[replica_id]
            evicted = replica.fail()  # marks FAILED, evicts the queue
            records = [
                replica.inflight.pop(request.handle)
                for request in evicted
                if request.handle in replica.inflight
            ]
            replica.outstanding -= len(records)
            for record in records:
                self.router.finish(record.session_id)
            self.metrics.record_event(
                ClusterEvent(
                    self.clock.now(), "replica_failed", replica_id,
                    len(self._healthy_locked()), "fault injection",
                )
            )
            self._trace_event(
                "replica_failed", replica_id=replica_id, evicted=len(records)
            )
        # Outside the lock: joins the worker thread, whose completion
        # callbacks re-enter the cluster lock.
        replica.shutdown()
        with self._lock:
            self._rehome_sessions_locked(replica)
        rerouted = 0
        for record in records:
            if record.span is not None:
                record.span.add_event("failover", from_replica=replica_id)
            try:
                self._dispatch(record)
                rerouted += 1
            except ServingError as error:
                record.handle._fail(error)
                self.metrics.record_failure()
                if record.span is not None:
                    record.span.add_event("failed", error=type(error).__name__)
                    self.tracer.end(record.span)
        self.metrics.record_failover(rerouted)
        if self.recorder is not None:
            self.recorder.note(
                "replica_failed", replica_id=replica_id, rerouted=rerouted
            )
            self.recorder.trigger(
                "replica_failed",
                registry=self.metrics.registry,
                snapshot=self.snapshot(),
                replica_id=replica_id,
                evicted=len(records),
                rerouted=rerouted,
            )
        return rerouted

    def _rehome_sessions_locked(self, replica: Replica) -> None:
        """Move a dead replica's sessions (and KV) to survivors."""
        cache = replica.session_cache
        for session_id in self.router.sessions_owned_by(replica.replica_id):
            try:
                target = self.router.rehome(session_id, self._replicas)
            except NoHealthyReplica:
                self.router.forget_owner(session_id)
                prefix_id = self._session_prefix.pop(session_id, None)
                if cache is not None and cache.has_session(session_id):
                    if prefix_id is not None and self.tier is not None:
                        # Nobody can adopt the session: return its tier
                        # refcount so the chain doesn't leak as pinned.
                        self.tier.release_prefix(prefix_id, replica.replica_id)
                    cache.close_session(session_id)
                continue
            if cache is not None and cache.has_session(session_id):
                session = cache.pop_session(session_id)
                target_cache = target.session_cache
                if target_cache is not None:
                    target_cache.adopt_session(session)
                if session.prefix_id is not None and self.tier is not None:
                    self.tier.move_holder(
                        session.prefix_id, replica.replica_id,
                        target.replica_id,
                    )
            self.metrics.record_rehome()

    # -- manual stepping & maintenance ---------------------------------------
    def step(self, *, force: bool = True) -> int:
        """Step every live replica once; returns requests executed.

        Manual mode only.  Also runs one autoscaler evaluation and
        finalizes completed drains — the deterministic maintenance tick.
        """
        if not self.manual:
            raise RuntimeError("step() is for manual (simulated-clock) mode")
        with self._lock:
            live = sorted(
                (r for r in self._replicas.values() if r.alive),
                key=lambda r: r.replica_id,
            )
        executed = 0
        for replica in live:
            if not replica.engine.closed:
                executed += replica.engine.step(force=force)
        self.maintain()
        return executed

    def maintain(self) -> None:
        """SLO tick + autoscaler evaluation + drain finalization.

        The SLO monitor ticks *before* the autoscaler evaluates, so an
        alert that fires on this cycle's measurements is visible to
        this cycle's scaling decision.
        """
        with self._lock:
            if self.slo_monitor is not None:
                self.slo_monitor.tick(self.clock.now())
            if self.autoscaler is not None:
                self.autoscaler.evaluate(self.clock.now())
            ready = [
                r
                for r in sorted(
                    self._replicas.values(), key=lambda r: r.replica_id
                )
                if r.state == DRAINING
                and r.outstanding == 0
                and r.engine.pending == 0
            ]
            for replica in ready:
                self._rehome_sessions_locked(replica)
                replica.state = STOPPED
                self.metrics.record_event(
                    ClusterEvent(
                        self.clock.now(), "retire", replica.replica_id,
                        len(self._healthy_locked()), "drain complete",
                    )
                )
                self._trace_event("retire", replica_id=replica.replica_id)
        for replica in ready:
            replica.engine.close(drain=True)

    def run_until_idle(self) -> int:
        """Step until every replica queue is empty; returns executed."""
        processed = 0
        while True:
            executed = self.step(force=True)
            processed += executed
            if executed == 0 and self.pending == 0:
                return processed

    # -- observability -------------------------------------------------------
    def snapshot(self) -> dict:
        """Fleet metrics + per-replica engine views + replica states."""
        with self._lock:
            replicas = dict(self._replicas)
        snapshot = self.metrics.snapshot(
            {rid: r.engine.metrics for rid, r in replicas.items()}
        )
        snapshot["replicas"] = {
            str(rid): {
                "state": r.state,
                "dispatched": r.dispatched,
                "outstanding": r.outstanding,
                "busy_until": r.busy_until,
            }
            for rid, r in sorted(replicas.items())
        }
        snapshot["fleet_size"] = self.fleet_size
        if self.tier is not None:
            snapshot["tier"] = self.tier.stats()
        return snapshot
