"""Cluster load drivers: deterministic virtual-time open-loop runs.

The wall-clock generators in :mod:`repro.serving.loadgen` sleep between
arrivals; these drivers instead *advance the simulated clock* by the
same gaps and step the cluster, so an open-loop Poisson run — fleet
throughput, latency percentiles, autoscaler trajectory and all — is a
bit-deterministic function of the seed and finishes in milliseconds of
real time.  This is the regime ``bench_cluster.py`` gates and the
``repro cluster-bench`` CLI verb reports.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.cluster.cluster import ClusterHandle, ServingCluster
from repro.serving.loadgen import Arrival


def _require_manual(cluster: ServingCluster) -> None:
    if not cluster.manual:
        raise ValueError(
            "virtual-time runs need a cluster on a SimulatedClock; use "
            "repro.serving.loadgen for wall-clock load"
        )


def run_virtual_open_loop(
    cluster: ServingCluster,
    payloads: Sequence[Any],
    gaps: Sequence[float],
    *,
    submit_kwargs: Callable[[int], dict] | None = None,
    step_each: bool = True,
) -> dict:
    """Open-loop run in virtual time: advance, submit, step, drain.

    ``gaps[i]`` is the virtual pause before submitting ``payloads[i]``.
    With ``step_each`` the cluster takes a policy-respecting step at
    every arrival instant (batches dispatch when they fill or their
    wait budget expires); the tail is drained with forced steps.
    Returns the fleet report plus the resolved handles, in submit
    order.
    """
    _require_manual(cluster)
    if len(payloads) != len(gaps):
        raise ValueError(f"{len(payloads)} payloads vs {len(gaps)} arrival gaps")
    handles: list[ClusterHandle] = []
    for i, (payload, gap) in enumerate(zip(payloads, gaps)):
        if gap > 0:
            cluster.clock.advance(gap)
        kwargs = submit_kwargs(i) if submit_kwargs is not None else {}
        handles.append(cluster.submit(payload, **kwargs))
        if step_each:
            cluster.step(force=False)
    cluster.run_until_idle()
    return _virtual_report(cluster, handles)


def run_virtual_schedule(
    cluster: ServingCluster,
    arrivals: Sequence[Arrival],
    payload_fn: Callable[[Arrival], Any],
    *,
    submit_kwargs: Callable[[Arrival], dict] | None = None,
    step_each: bool = True,
    force_each: bool = False,
) -> dict:
    """Drive a :func:`multi_tenant_arrivals` schedule through a cluster.

    ``payload_fn(arrival)`` builds each request's payload;
    ``submit_kwargs(arrival)`` its submit options (defaults to the
    arrival's session id and tenant, which is what decode mixes want).
    ``force_each`` executes every arrival immediately — the
    one-request-per-step regime the affinity-vs-round-robin comparison
    uses, where no session ever has in-flight work when its next step
    routes.
    """
    _require_manual(cluster)
    handles: list[ClusterHandle] = []
    previous = 0.0
    for arrival in arrivals:
        if arrival.time > previous:
            cluster.clock.advance(arrival.time - previous)
            previous = arrival.time
        kwargs = (
            submit_kwargs(arrival)
            if submit_kwargs is not None
            else {"session_id": arrival.session, "tenant": arrival.tenant}
        )
        handles.append(cluster.submit(payload_fn(arrival), **kwargs))
        if step_each or force_each:
            cluster.step(force=force_each)
    cluster.run_until_idle()
    return _virtual_report(cluster, handles)


def _virtual_report(cluster: ServingCluster, handles: list[ClusterHandle]) -> dict:
    metrics = cluster.metrics
    latency = metrics.latency_summary()
    wait = metrics.queue_wait_summary()
    return {
        "pattern": "virtual-open-loop",
        "requests": len(handles),
        "completed": metrics.completed,
        "failed": metrics.failed,
        "fleet_size": cluster.fleet_size,
        "throughput_rps": metrics.throughput(),
        "latency_p50_ms": latency["p50"] * 1e3,
        "latency_p95_ms": latency["p95"] * 1e3,
        "latency_p99_ms": latency["p99"] * 1e3,
        "queue_wait_p50_ms": wait["p50"] * 1e3,
        "affinity_hit_rate": metrics.affinity_hit_rate(),
        "migrations": metrics.migrations,
        "handles": handles,
    }
