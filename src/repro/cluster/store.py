"""Cluster-wide shared cache tier: a pluggable KV store + prefix chains.

Per-replica :class:`~repro.serving.cache.SessionCache` memos forfeit
fleet hit rate under any non-sticky routing policy — a prompt computed
on replica 0 is recomputed when the router sends its repeat to replica
1.  This module hoists both cache concerns above the replica set:

* :class:`KVStore` — a minimal Redis-shaped storage interface
  (``get``/``put``/``delete``/``scan`` over namespaced string keys,
  per-entry TTL evaluated against an injectable clock).  The
  :class:`LocalKVStore` backend is deterministic and in-process (tests
  and simulation); :class:`ShardedKVStore` stable-hashes keys across
  several of them (the shape a real Redis-cluster client would slot
  into behind the same interface).
* :class:`SharedCacheTier` — the serving semantics on top of a store:
  fleet-wide **prompt memoization** (LRU byte budget + TTL) and
  reference-counted **common-prefix KV chains**
  (:class:`~repro.serving.cache.PrefixChain`) that decode sessions
  fork from instead of re-materializing the same system prompt per
  replica.  Chain pages are owned by the tier (never any replica's
  :class:`~repro.serving.cache.BlockPool`), charged once fleet-wide,
  and guarded by per-replica holder counts so routing can prefer
  replicas already holding a session's prefix.
"""

from __future__ import annotations

import abc
import threading
import zlib
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.serving.cache import MISS, KVBlock, PrefixChain
from repro.serving.clock import WallClock
from repro.workloads.llm import DecoderConfig, kv_cache_bytes

#: Tier namespaces within one :class:`KVStore`.
NS_MEMO = "memo"
NS_PREFIX = "prefix"
NS_REFS = "prefix-refs"
NS_HOLDERS = "prefix-holders"


class KVStore(abc.ABC):
    """Namespaced key/value storage with TTL — the pluggable backend.

    Deliberately Redis-shaped (string keys inside namespaces, per-entry
    TTL, prefix ``scan``) so a networked backend can replace
    :class:`LocalKVStore` without touching the tier logic.  Expiry is
    evaluated lazily against the store's clock on every read, which
    keeps behaviour deterministic under a
    :class:`~repro.serving.clock.SimulatedClock`.
    """

    @abc.abstractmethod
    def put(
        self, namespace: str, key: str, value: Any, *, ttl_s: float | None = None
    ) -> None:
        """Store ``value``; ``ttl_s`` seconds to live (``None`` = forever)."""

    @abc.abstractmethod
    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """The stored value, or ``default`` when absent/expired."""

    @abc.abstractmethod
    def delete(self, namespace: str, key: str) -> bool:
        """Remove an entry; True when a live entry existed."""

    @abc.abstractmethod
    def scan(self, namespace: str, prefix: str = "") -> list[str]:
        """Sorted live keys of ``namespace`` starting with ``prefix``."""

    def size(self, namespace: str) -> int:
        """Live entries in ``namespace``."""
        return len(self.scan(namespace))


class LocalKVStore(KVStore):
    """Deterministic in-process :class:`KVStore` backend."""

    def __init__(self, *, clock=None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self._data: dict[str, dict[str, tuple[Any, float | None]]] = {}
        self._lock = threading.RLock()

    def _live(self, namespace: str, key: str) -> bool:
        """Caller holds the lock; drops the entry when expired."""
        entry = self._data.get(namespace, {}).get(key)
        if entry is None:
            return False
        _, expires_at = entry
        if expires_at is not None and self.clock.now() >= expires_at:
            del self._data[namespace][key]
            return False
        return True

    def put(
        self, namespace: str, key: str, value: Any, *, ttl_s: float | None = None
    ) -> None:
        if ttl_s is not None and ttl_s < 0:
            raise ValueError(f"ttl_s must be >= 0, got {ttl_s}")
        expires_at = None if ttl_s is None else self.clock.now() + ttl_s
        with self._lock:
            self._data.setdefault(namespace, {})[key] = (value, expires_at)

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        with self._lock:
            if not self._live(namespace, key):
                return default
            return self._data[namespace][key][0]

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            live = self._live(namespace, key)
            if live:
                del self._data[namespace][key]
            return live

    def scan(self, namespace: str, prefix: str = "") -> list[str]:
        with self._lock:
            keys = list(self._data.get(namespace, {}))
            return sorted(
                key
                for key in keys
                if key.startswith(prefix) and self._live(namespace, key)
            )


class ShardedKVStore(KVStore):
    """Stable-hash sharding over :class:`LocalKVStore` partitions.

    The smallest faithful model of a sharded (Redis-cluster-style)
    deployment: each ``(namespace, key)`` pair maps to one shard by
    CRC32, scans merge shard results.  Shard choice is content-stable,
    so behaviour is deterministic run to run.
    """

    def __init__(self, *, shards: int = 4, clock=None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.clock = clock if clock is not None else WallClock()
        self._shards = [LocalKVStore(clock=self.clock) for _ in range(shards)]

    def _shard(self, namespace: str, key: str) -> LocalKVStore:
        digest = zlib.crc32(f"{namespace}:{key}".encode())
        return self._shards[digest % len(self._shards)]

    def put(
        self, namespace: str, key: str, value: Any, *, ttl_s: float | None = None
    ) -> None:
        self._shard(namespace, key).put(namespace, key, value, ttl_s=ttl_s)

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self._shard(namespace, key).get(namespace, key, default)

    def delete(self, namespace: str, key: str) -> bool:
        return self._shard(namespace, key).delete(namespace, key)

    def scan(self, namespace: str, prefix: str = "") -> list[str]:
        merged: list[str] = []
        for shard in self._shards:
            merged.extend(shard.scan(namespace, prefix))
        return sorted(merged)


def _string_key(key: Any) -> str:
    """Deterministic store key for an arbitrary hashable cache key."""
    return key if isinstance(key, str) else repr(key)


def _isolated(value: Any) -> Any:
    """Array values are copied so tier entries never alias results."""
    return value.copy() if isinstance(value, np.ndarray) else value


class SharedCacheTier:
    """Fleet-wide prompt memo + refcounted prefix chains over a store.

    Memoization: :meth:`get_memo` / :meth:`put_memo` mirror
    :class:`~repro.serving.cache.SessionCache`'s memo API (MISS
    sentinel, LRU byte budget, isolated array copies) but live above
    the replica set, so hits survive any routing policy.  ``memo_ttl_s``
    bounds entry lifetime against the store's clock.

    Prefix chains: :meth:`ensure_prefix` registers the zero-state KV
    pages of a shared system prompt once; sessions adopt them via
    :meth:`~repro.serving.cache.SessionCache.adopt_prefix`.  The tier
    tracks one refcount per chain plus per-replica holder counts
    (keys ``{prefix_id}/{replica_id}`` in the store — the longest-prefix
    placement signal of the router's ``cache_aware`` policy).  A chain's
    pages stay alive while referenced; at refcount zero the chain
    remains cached but becomes evictable (``prefix_ttl_s``).
    """

    def __init__(
        self,
        store: KVStore | None = None,
        *,
        clock=None,
        memo_capacity_bytes: int | None = None,
        memo_ttl_s: float | None = None,
        prefix_ttl_s: float | None = None,
    ) -> None:
        if memo_capacity_bytes is not None and memo_capacity_bytes < 0:
            raise ValueError(
                f"memo_capacity_bytes must be >= 0, got {memo_capacity_bytes}"
            )
        self.store = store if store is not None else LocalKVStore(clock=clock)
        self.memo_capacity_bytes = memo_capacity_bytes
        self.memo_ttl_s = memo_ttl_s
        self.prefix_ttl_s = prefix_ttl_s
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._memo_lru: OrderedDict[str, int] = OrderedDict()
        self._memo_bytes = 0
        self._lock = threading.RLock()

    # -- prompt memoization ---------------------------------------------------
    def get_memo(self, key: Any) -> Any:
        """Cached value for ``key`` or the cache :data:`MISS` sentinel."""
        skey = _string_key(key)
        with self._lock:
            value = self.store.get(NS_MEMO, skey, MISS)
            if value is MISS:
                self.misses += 1
                # The entry may have expired out from under the LRU
                # ledger; reconcile so byte accounting stays truthful.
                if skey in self._memo_lru:
                    self._memo_bytes -= self._memo_lru.pop(skey)
                return MISS
            self._memo_lru.move_to_end(skey)
            self.hits += 1
            return _isolated(value)

    def put_memo(self, key: Any, value: Any, nbytes: int | None = None) -> None:
        """Store ``value`` fleet-wide; evicts LRU past the byte budget."""
        if nbytes is None:
            nbytes = int(value.nbytes) if isinstance(value, np.ndarray) else 0
        if (
            self.memo_capacity_bytes is not None
            and nbytes > self.memo_capacity_bytes
        ):
            return
        skey = _string_key(key)
        with self._lock:
            if skey in self._memo_lru:
                self._memo_bytes -= self._memo_lru.pop(skey)
            self.store.put(NS_MEMO, skey, _isolated(value), ttl_s=self.memo_ttl_s)
            self._memo_lru[skey] = nbytes
            self._memo_bytes += nbytes
            if self.memo_capacity_bytes is not None:
                while (
                    self._memo_bytes > self.memo_capacity_bytes
                    and len(self._memo_lru) > 1
                ):
                    evicted, evicted_bytes = self._memo_lru.popitem(last=False)
                    self._memo_bytes -= evicted_bytes
                    self.store.delete(NS_MEMO, evicted)
                    self.evictions += 1

    @property
    def memo_entries(self) -> int:
        return self.store.size(NS_MEMO)

    @property
    def memo_bytes(self) -> int:
        with self._lock:
            return self._memo_bytes

    # -- prefix chains --------------------------------------------------------
    def ensure_prefix(
        self,
        prefix_id: str,
        tokens: int,
        *,
        config: DecoderConfig,
        block_size: int = 1,
        kv_bits: int = 8,
    ) -> PrefixChain:
        """The chain for ``prefix_id``, building zero-state pages once.

        Prompt tokens are zero-state K/V (the serving layer's prompt
        model), so a chain can be materialized directly from its token
        count; idempotent for matching ``tokens``, an error otherwise.
        """
        if tokens < 1:
            raise ValueError(f"tokens must be >= 1, got {tokens}")
        with self._lock:
            existing = self.prefix(prefix_id)
            if existing is not None:
                if existing.tokens != tokens:
                    raise ValueError(
                        f"prefix {prefix_id!r} already registered with "
                        f"{existing.tokens} tokens, not {tokens}"
                    )
                return existing
            blocks: list[KVBlock] = []
            remaining = tokens
            while remaining > 0:
                block = KVBlock(block_size, config.dim)
                block.fill_zeros(min(remaining, block_size))
                remaining -= block.fill
                blocks.append(block)
            chain = PrefixChain(
                prefix_id=prefix_id,
                tokens=tokens,
                blocks=tuple(blocks),
                block_size=block_size,
                nbytes=kv_cache_bytes(
                    config, len(blocks) * block_size, bits=kv_bits
                ),
            )
            self.register_prefix(chain)
            return chain

    def register_prefix(self, chain: PrefixChain) -> None:
        """Admit an existing chain (e.g. a live session's
        :meth:`~repro.serving.cache.SessionCache.export_prefix`)."""
        if "/" in chain.prefix_id:
            raise ValueError(
                f"prefix_id {chain.prefix_id!r} must not contain '/'"
            )
        with self._lock:
            if self.prefix(chain.prefix_id) is not None:
                raise ValueError(
                    f"prefix {chain.prefix_id!r} already registered"
                )
            # Unreferenced chains are evictable from the start.
            self.store.put(
                NS_PREFIX, chain.prefix_id, chain, ttl_s=self.prefix_ttl_s
            )

    def prefix(self, prefix_id: str) -> PrefixChain | None:
        return self.store.get(NS_PREFIX, prefix_id)

    def refcount(self, prefix_id: str) -> int:
        return self.store.get(NS_REFS, prefix_id, 0)

    def acquire_prefix(self, prefix_id: str, replica_id: int) -> PrefixChain:
        """One more session on ``replica_id`` forks from the chain.

        While referenced, the chain is pinned (stored without TTL): the
        tier must never expire pages a live session still reads.
        """
        with self._lock:
            chain = self.prefix(prefix_id)
            if chain is None:
                raise KeyError(f"no registered prefix {prefix_id!r}")
            refs = self.refcount(prefix_id) + 1
            self.store.put(NS_REFS, prefix_id, refs)
            if refs == 1:
                self.store.put(NS_PREFIX, prefix_id, chain)  # pin: no TTL
            holder_key = f"{prefix_id}/{replica_id}"
            held = self.store.get(NS_HOLDERS, holder_key, 0)
            self.store.put(NS_HOLDERS, holder_key, held + 1)
            return chain

    def release_prefix(self, prefix_id: str, replica_id: int) -> int:
        """A forked session closed; returns the remaining refcount.

        At refcount zero the chain stays cached for future forks but
        becomes evictable again (re-stored with ``prefix_ttl_s``).
        """
        with self._lock:
            refs = self.refcount(prefix_id)
            if refs < 1:
                raise ValueError(f"prefix {prefix_id!r} is not referenced")
            holder_key = f"{prefix_id}/{replica_id}"
            held = self.store.get(NS_HOLDERS, holder_key, 0)
            if held < 1:
                raise ValueError(
                    f"replica {replica_id} holds no sessions on prefix "
                    f"{prefix_id!r}"
                )
            if held == 1:
                self.store.delete(NS_HOLDERS, holder_key)
            else:
                self.store.put(NS_HOLDERS, holder_key, held - 1)
            refs -= 1
            if refs == 0:
                self.store.delete(NS_REFS, prefix_id)
                chain = self.prefix(prefix_id)
                if chain is not None:
                    self.store.put(
                        NS_PREFIX, prefix_id, chain, ttl_s=self.prefix_ttl_s
                    )
            else:
                self.store.put(NS_REFS, prefix_id, refs)
            return refs

    def move_holder(
        self, prefix_id: str, from_replica: int, to_replica: int
    ) -> None:
        """Re-home one forked session's holder count (migration/failover)."""
        if from_replica == to_replica:
            return
        with self._lock:
            src_key = f"{prefix_id}/{from_replica}"
            held = self.store.get(NS_HOLDERS, src_key, 0)
            if held < 1:
                raise ValueError(
                    f"replica {from_replica} holds no sessions on prefix "
                    f"{prefix_id!r}"
                )
            if held == 1:
                self.store.delete(NS_HOLDERS, src_key)
            else:
                self.store.put(NS_HOLDERS, src_key, held - 1)
            dst_key = f"{prefix_id}/{to_replica}"
            self.store.put(
                NS_HOLDERS, dst_key, self.store.get(NS_HOLDERS, dst_key, 0) + 1
            )

    def replicas_holding(self, prefix_id: str) -> list[int]:
        """Replica ids with live sessions forked from the chain, sorted."""
        prefix = f"{prefix_id}/"
        return sorted(
            int(key[len(prefix) :])
            for key in self.store.scan(NS_HOLDERS, prefix)
        )

    def drop_prefix(self, prefix_id: str) -> bool:
        """Explicitly evict an *unreferenced* chain."""
        with self._lock:
            if self.refcount(prefix_id) > 0:
                raise ValueError(
                    f"prefix {prefix_id!r} still referenced; cannot drop"
                )
            return self.store.delete(NS_PREFIX, prefix_id)

    @property
    def prefix_ids(self) -> list[str]:
        return self.store.scan(NS_PREFIX)

    @property
    def shared_bytes(self) -> int:
        """Fleet bytes of live prefix chains — each charged **once**,
        however many sessions alias its pages."""
        return sum(
            self.prefix(prefix_id).nbytes for prefix_id in self.prefix_ids
        )

    # -- observability --------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "memo_entries": self.memo_entries,
                "memo_bytes": self.memo_bytes,
                "prefixes": len(self.prefix_ids),
                "shared_bytes": self.shared_bytes,
                "referenced_prefixes": self.store.size(NS_REFS),
            }
