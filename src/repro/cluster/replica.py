"""Replica lifecycle: one serving engine plus its health state.

A :class:`Replica` wraps one :class:`~repro.serving.engine.ServingEngine`
(and therefore one sharded photonic accelerator — the ``num_cores`` /
``shard_axis`` / ``backend`` knobs apply per replica through whatever
executor its servable was built with) and carries the cluster-visible
state machine::

    HEALTHY ──fail()──────────────► FAILED
       │
       └─start_drain()─► DRAINING ──stop()─► STOPPED

* **HEALTHY** accepts new dispatches.
* **DRAINING** finishes what it already holds; the router only sends it
  further steps of sessions it is still executing.
* **FAILED** is fault injection: queued requests are evicted and
  re-routed by the cluster, sessions are re-homed, no handle is lost.
* **STOPPED** is a completed drain; the engine is closed.

The replica also carries the bookkeeping the routing policies and the
autoscaler read: ``outstanding`` (dispatched but not completed),
``dispatched`` (lifetime count), and ``busy_until`` — the virtual-time
horizon of the :class:`ServiceModel` when the cluster runs under a
:class:`~repro.serving.clock.SimulatedClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.serving.batcher import BatchingPolicy
from repro.serving.cache import SessionCache
from repro.serving.config import EngineConfig
from repro.serving.engine import ServingEngine
from repro.serving.request import InferenceRequest, RequestHandle
from repro.serving.servable import Servable

#: Replica health states (plain strings: JSON-able, printable).
HEALTHY = "healthy"
DRAINING = "draining"
FAILED = "failed"
STOPPED = "stopped"

#: States in which the replica's engine is still running work.
ALIVE_STATES = (HEALTHY, DRAINING)


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic virtual-time cost of one coalesced batch.

    Under a simulated clock the engines execute in zero virtual time;
    this model supplies the missing service duration so fleet throughput
    and latency are well-defined *and* bit-deterministic:
    ``batch_seconds(b) = base_s + per_request_s * b``.  ``base_s`` is
    the per-dispatch overhead dynamic batching amortizes; replicas hold
    independent ``busy_until`` horizons, so N replicas genuinely overlap
    in virtual time — the fleet-scaling curve ``bench_cluster.py`` gates
    needs no wall-clock parallelism and holds on a 1-CPU host.
    """

    base_s: float = 1e-3
    per_request_s: float = 250e-6

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_request_s < 0:
            raise ValueError(
                f"service times must be >= 0, got base_s={self.base_s}, "
                f"per_request_s={self.per_request_s}"
            )

    def batch_seconds(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return self.base_s + self.per_request_s * batch_size


class Replica:
    """One serving engine inside a cluster, with health and load state."""

    def __init__(
        self,
        replica_id: int,
        servable: Servable,
        *,
        config: EngineConfig | None = None,
        policy: BatchingPolicy | None = None,
        queue_depth: int | None = None,
        clock=None,
        close_executor: bool = True,
        scheduler: str | None = None,
        iteration_cost=None,
        memo_cache: SessionCache | None = None,
        tracer=None,
        recorder=None,
    ) -> None:
        self.replica_id = replica_id
        self.name = f"replica-{replica_id}"
        self.servable = servable
        if config is None:
            # Internal plumbing: fold the per-knob arguments into an
            # EngineConfig here so the engine sees the unified API
            # (and no deprecation warning fires for cluster internals).
            batching = policy if policy is not None else BatchingPolicy()
            config = EngineConfig(
                max_batch_size=batching.max_batch_size,
                max_wait_us=batching.max_wait_us,
                queue_depth=64 if queue_depth is None else queue_depth,
                scheduler="request" if scheduler is None else scheduler,
                iteration_cost=iteration_cost,
            )
        self.config = config
        #: Replica-private memo cache handed to the engine (``None``
        #: unless the cluster configures per-replica memoization).
        self.memo_cache = memo_cache
        self.engine = ServingEngine(
            servable,
            config=config,
            clock=clock,
            cache=memo_cache,
            tracer=tracer,
            recorder=recorder,
            close_executor=close_executor,
        )
        self.state = HEALTHY
        #: Dispatched-but-not-completed requests (queued + executing).
        self.outstanding = 0
        #: Lifetime dispatch count (per-replica occupancy accounting).
        self.dispatched = 0
        #: Virtual-time horizon this replica is busy until (ServiceModel).
        self.busy_until = 0.0
        #: Engine handle -> cluster in-flight record, for failover.
        self.inflight: dict[RequestHandle, Any] = {}
        # Virtual batch stamping state: (start, end) of the batch whose
        # members are currently resolving, and how many are left.
        self._vbatch: tuple[float, float] = (0.0, 0.0)
        self._vbatch_left = 0

    # -- state machine -------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.state in ALIVE_STATES

    @property
    def accepts_new(self) -> bool:
        """May the router place *new* work (not session-pinned) here?"""
        return self.state == HEALTHY

    def start_drain(self) -> None:
        if self.state != HEALTHY:
            raise ValueError(f"{self.name} cannot drain from state {self.state!r}")
        self.state = DRAINING

    def fail(self) -> list[InferenceRequest]:
        """Fault injection: mark FAILED and evict queued work.

        Returns the evicted (still-pending) requests; the cluster
        re-routes them so no :class:`RequestHandle` is lost.  Call
        :meth:`shutdown` afterwards — *outside* any cluster lock,
        because closing a wall-clock engine joins its worker thread,
        whose completion callbacks take that lock.  A batch already
        executing completes normally and resolves through the usual
        callback path.
        """
        if self.state not in ALIVE_STATES:
            raise ValueError(f"{self.name} cannot fail from state {self.state!r}")
        self.state = FAILED
        return self.engine.evict_pending()

    def shutdown(self) -> None:
        """Close the engine of a FAILED replica (nothing left to fail)."""
        self.engine.close(drain=False)

    def stop(self) -> None:
        """Complete a drain: close the (already empty) engine."""
        if self.state != DRAINING:
            raise ValueError(f"{self.name} cannot stop from state {self.state!r}")
        self.state = STOPPED
        self.engine.close(drain=True)

    # -- cluster-visible load ------------------------------------------------
    @property
    def session_cache(self) -> SessionCache | None:
        """The servable's KV/session cache, when it has one."""
        cache = getattr(self.servable, "cache", None)
        return cache if isinstance(cache, SessionCache) else None

    def load(self, now: float) -> float:
        """Backlog signal for routing/autoscaling: outstanding work plus
        a unit of virtual busyness while the service model keeps this
        replica occupied past ``now``."""
        return self.outstanding + (1.0 if self.busy_until > now else 0.0)

    def virtual_stamp(self, batch_size: int, now: float, model: ServiceModel):
        """(started, finished) of the next resolving request under the
        service model, grouping consecutive resolutions into their batch."""
        if self._vbatch_left == 0:
            start = max(self.busy_until, now)
            end = start + model.batch_seconds(batch_size)
            self.busy_until = end
            self._vbatch = (start, end)
            self._vbatch_left = batch_size
        self._vbatch_left -= 1
        return self._vbatch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica({self.name}, state={self.state}, "
            f"outstanding={self.outstanding})"
        )
