"""SLO-driven autoscaling: grow and drain the fleet against load.

The :class:`Autoscaler` evaluates two signals on every cluster step:

* **Backlog** — mean outstanding work per healthy replica (queued plus
  executing, plus virtual busyness under a service model).  Above
  ``high_backlog`` the fleet scales up; below ``low_backlog`` it drains.
* **Latency SLO** — the p95 of request latencies completed since the
  previous evaluation, against ``latency_slo_s`` (optional).  A breach
  forces a scale-up even when the backlog looks fine — the queue-depth
  signal misses service-time inflation.
* **SLO burn-rate alerts** (optional) — when built with an
  :class:`~repro.obs.timeseries.SLOMonitor`, any firing multi-window
  burn-rate alert forces a scale-up and vetoes scale-down, the same way
  a raw latency breach does but weighted by error-budget consumption.

Actions are rate-limited by ``cooldown_s`` and bounded by
``min_replicas`` / ``max_replicas``.  Scale-down is graceful: the
highest-id healthy replica starts DRAINING (deterministic choice) and is
retired by the cluster once empty.  Every action lands in the
:class:`~repro.cluster.metrics.ClusterMetrics` event log with its clock
timestamp, so under a :class:`~repro.serving.clock.SimulatedClock` the
whole scaling trajectory is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Bounds, watermarks, and pacing of the scaling loop."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: Scale up when mean outstanding per healthy replica exceeds this.
    high_backlog: float = 4.0
    #: Drain one replica when mean backlog falls below this.
    low_backlog: float = 0.5
    #: Optional p95 latency SLO (seconds) evaluated per window.
    latency_slo_s: float | None = None
    #: Minimum clock time between consecutive scaling actions.
    cooldown_s: float = 0.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) below "
                f"min_replicas ({self.min_replicas})"
            )
        if self.low_backlog < 0 or self.high_backlog <= self.low_backlog:
            raise ValueError(
                f"need 0 <= low_backlog < high_backlog, got "
                f"low={self.low_backlog}, high={self.high_backlog}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.latency_slo_s is not None and self.latency_slo_s <= 0:
            raise ValueError(
                f"latency_slo_s must be > 0, got {self.latency_slo_s}"
            )


class Autoscaler:
    """Evaluates the policy against a cluster (driven by its step loop).

    ``slo_monitor`` is the optional third signal: an
    :class:`~repro.obs.timeseries.SLOMonitor` whose currently-firing
    burn-rate alerts force a scale-up (and veto scale-down) exactly
    like a raw latency-SLO breach — but budget-aware, so a brief spike
    that doesn't threaten the error budget never flaps the fleet.
    """

    def __init__(
        self, policy: AutoscalerPolicy, cluster, *, slo_monitor=None
    ) -> None:
        self.policy = policy
        self.cluster = cluster
        self.slo_monitor = slo_monitor
        self._last_action_at = -float("inf")
        self._record_index = 0

    def evaluate(self, now: float) -> str | None:
        """Apply at most one scaling action; returns its kind (or None).

        Called by the cluster with its lock held (manual stepping) —
        reads replica state directly and acts through the cluster's
        ``_scale_up_locked`` / ``_begin_drain_locked`` internals.
        """
        policy = self.policy
        # Cooldown gates *before* the latency window is consumed, so an
        # SLO breach observed while suppressed is still acted on at the
        # next eligible evaluation rather than silently discarded.
        if now - self._last_action_at < policy.cooldown_s:
            return None
        latencies, self._record_index = self.cluster.metrics.latencies_since(
            self._record_index
        )
        healthy = self.cluster._healthy_locked()
        if not healthy:
            return None
        now_backlog = sum(r.load(now) for r in healthy) / len(healthy)
        slo_breached = bool(
            policy.latency_slo_s is not None
            and latencies
            and float(np.percentile(latencies, 95)) > policy.latency_slo_s
        )
        alerting = (
            self.slo_monitor.firing() if self.slo_monitor is not None else []
        )
        if (
            now_backlog > policy.high_backlog or slo_breached or alerting
        ) and len(healthy) < policy.max_replicas:
            if now_backlog > policy.high_backlog:
                reason = f"backlog {now_backlog:.2f} > {policy.high_backlog:g}"
            elif slo_breached:
                reason = f"p95 latency above SLO ({policy.latency_slo_s:g}s)"
            else:
                reason = f"SLO burn-rate alert: {', '.join(alerting)}"
            self.cluster._scale_up_locked(now, reason)
            self._last_action_at = now
            return "scale_up"
        if (
            not slo_breached
            and not alerting
            and now_backlog < policy.low_backlog
            and len(healthy) > policy.min_replicas
        ):
            victim = max(healthy, key=lambda r: r.replica_id)
            self.cluster._begin_drain_locked(
                victim,
                now,
                f"backlog {now_backlog:.2f} < {policy.low_backlog:g}",
            )
            self._last_action_at = now
            return "drain"
        return None
