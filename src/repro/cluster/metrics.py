"""Fleet observability: aggregated metrics and the cluster event log.

:class:`ClusterMetrics` records three kinds of facts:

* **Per-request records** stamped by the cluster (virtual service-model
  times under a simulated clock, engine times otherwise) — the source
  of fleet throughput and p50/p95/p99 latency/queue-wait percentiles,
  computed from raw records with the same
  :func:`repro.serving.metrics.summarize` the per-engine recorders use.
* **Routing counters** — per-replica/per-tenant dispatches, affinity
  hits and misses, KV migrations (count + bytes), failovers, retries,
  re-homed sessions.
* **The event log** — every lifecycle transition (scale-up, drain,
  retire, failure) as a timestamped :class:`ClusterEvent`.  Under a
  :class:`~repro.serving.clock.SimulatedClock` the log is
  bit-deterministic, which is exactly what ``bench_cluster.py`` gates.

Like the per-engine :class:`~repro.serving.metrics.Metrics`, the
counters sit on a :class:`~repro.obs.registry.MetricsRegistry`
(``cluster_*`` families, Prometheus exposition via
:meth:`ClusterMetrics.to_prometheus`) while raw records and the event
log stay exact.  The legacy attribute reads (``metrics.failovers`` and
friends) are properties over the registry instruments.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import asdict, dataclass

from repro.obs.registry import MetricsRegistry
from repro.serving.metrics import Metrics, span_throughput, summarize


@dataclass(frozen=True)
class ClusterRecord:
    """Timing and placement of one completed cluster request."""

    arrival: float
    started: float
    finished: float
    replica_id: int
    batch_size: int
    cache_hit: bool
    tenant: str | None = None

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.started - self.arrival


@dataclass(frozen=True)
class ClusterEvent:
    """One lifecycle transition (autoscaler action or failure)."""

    time: float
    kind: str  #: "scale_up" | "drain" | "retire" | "replica_failed"
    replica_id: int
    fleet_size: int  #: healthy replicas *after* the transition
    reason: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


class ClusterMetrics:
    """Thread-safe recorder the :class:`ServingCluster` reports into."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._records: list[ClusterRecord] = []
        self.registry = registry if registry is not None else MetricsRegistry()
        counter = self.registry.counter
        self._completed_c = counter(
            "cluster_requests_completed_total", "Resolved cluster requests"
        )
        self._failed_c = counter(
            "cluster_requests_failed_total", "Failed cluster requests"
        )
        self._cache_hits_c = counter(
            "cluster_cache_hits_total", "Requests served from cache"
        )
        self._affinity_hits_c = counter(
            "cluster_affinity_total", "Session-affinity routing", outcome="hit"
        )
        self._affinity_misses_c = counter(
            "cluster_affinity_total", "Session-affinity routing", outcome="miss"
        )
        self._sessions_placed_c = counter(
            "cluster_sessions_placed_total", "New sessions placed"
        )
        self._migrations_c = counter(
            "cluster_migrations_total", "KV session migrations"
        )
        self._migrated_bytes_c = counter(
            "cluster_migrated_bytes_total", "KV bytes migrated"
        )
        self._rehomed_c = counter(
            "cluster_sessions_rehomed_total", "Sessions re-homed on failure"
        )
        self._failovers_c = counter(
            "cluster_failovers_total", "Requests re-dispatched on failover"
        )
        self._retries_c = counter(
            "cluster_retries_total", "Requests retried after errors"
        )
        self._prefix_shared_c = counter(
            "cluster_prefix_adoptions_total", "Prefix forks", shared="true"
        )
        self._prefix_private_c = counter(
            "cluster_prefix_adoptions_total", "Prefix forks", shared="false"
        )
        self._latency_h = self.registry.histogram(
            "cluster_request_latency_seconds", "End-to-end cluster latency"
        )
        self._queue_wait_h = self.registry.histogram(
            "cluster_queue_wait_seconds", "Admission-to-execution wait"
        )
        self.events: list[ClusterEvent] = []

    # -- write side ----------------------------------------------------------
    def record_dispatch(
        self,
        replica_id: int,
        *,
        tenant: str | None = None,
        affinity_hit: bool | None = None,
        new_session: bool = False,
    ) -> None:
        dispatch = self.registry.counter(
            "cluster_dispatches_total", "Dispatches per replica",
            replica=replica_id,
        )
        tenant_c = (
            self.registry.counter(
                "cluster_tenant_dispatches_total", "Dispatches per tenant",
                tenant=tenant,
            )
            if tenant is not None
            else None
        )
        with self._lock:
            dispatch.inc()
            if tenant_c is not None:
                tenant_c.inc()
            if affinity_hit is True:
                self._affinity_hits_c.inc()
            elif affinity_hit is False:
                self._affinity_misses_c.inc()
            if new_session:
                self._sessions_placed_c.inc()

    def record_migration(self, nbytes: int) -> None:
        with self._lock:
            self._migrations_c.inc()
            self._migrated_bytes_c.inc(int(nbytes))

    def record_rehome(self, count: int = 1) -> None:
        with self._lock:
            self._rehomed_c.inc(count)

    def record_failover(self, count: int = 1) -> None:
        with self._lock:
            self._failovers_c.inc(count)

    def record_retry(self) -> None:
        with self._lock:
            self._retries_c.inc()

    def record_prefix_adoption(self, *, shared: bool) -> None:
        """One session opened from a registered prefix — adopting the
        tier's shared chain, or privately materializing its pages."""
        with self._lock:
            if shared:
                self._prefix_shared_c.inc()
            else:
                self._prefix_private_c.inc()

    def record_request(self, record: ClusterRecord) -> None:
        with self._lock:
            self._records.append(record)
            self._completed_c.inc()
            if record.cache_hit:
                self._cache_hits_c.inc()
            self._latency_h.observe(record.latency)
            self._queue_wait_h.observe(record.queue_wait)

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self._failed_c.inc(count)

    def record_event(self, event: ClusterEvent) -> None:
        with self._lock:
            self.events.append(event)

    # -- read side -----------------------------------------------------------
    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def failed(self) -> int:
        with self._lock:
            return int(self._failed_c.value)

    @property
    def affinity_hits(self) -> int:
        return int(self._affinity_hits_c.value)

    @property
    def affinity_misses(self) -> int:
        return int(self._affinity_misses_c.value)

    @property
    def sessions_placed(self) -> int:
        return int(self._sessions_placed_c.value)

    @property
    def migrations(self) -> int:
        return int(self._migrations_c.value)

    @property
    def migrated_bytes(self) -> int:
        return int(self._migrated_bytes_c.value)

    @property
    def sessions_rehomed(self) -> int:
        return int(self._rehomed_c.value)

    @property
    def failovers(self) -> int:
        return int(self._failovers_c.value)

    @property
    def retries(self) -> int:
        return int(self._retries_c.value)

    @property
    def prefix_adoptions_shared(self) -> int:
        return int(self._prefix_shared_c.value)

    @property
    def prefix_adoptions_private(self) -> int:
        return int(self._prefix_private_c.value)

    def records(self) -> list[ClusterRecord]:
        with self._lock:
            return list(self._records)

    def latencies_since(self, index: int) -> tuple[list[float], int]:
        """Latencies of records from ``index`` on, plus the new index.

        The autoscaler's SLO signal: each evaluation reads only the
        window of completions since the previous one.
        """
        with self._lock:
            window = self._records[index:]
            return [r.latency for r in window], len(self._records)

    def affinity_hit_rate(self) -> float:
        """Owner-routed fraction of steps with an existing session owner."""
        with self._lock:
            total = self.affinity_hits + self.affinity_misses
            return self.affinity_hits / total if total else 0.0

    def cache_hit_rate(self) -> float:
        """Fleet-wide memo hit fraction of completed requests — the
        hit-rate ledger ``bench_cache_tier.py`` gates (tier hits and
        replica-private hits both count; the denominator is every
        completed request)."""
        with self._lock:
            if not self._records:
                return 0.0
            hits = sum(1 for r in self._records if r.cache_hit)
            return hits / len(self._records)

    def dispatch_counts(self) -> dict[int, int]:
        series = self.registry.counter_series(
            "cluster_dispatches_total", "replica"
        )
        return {
            rid: count
            for rid, count in sorted(
                (int(rid), int(count)) for rid, count in series.items()
            )
        }

    def tenant_counts(self) -> dict[str, int]:
        series = self.registry.counter_series(
            "cluster_tenant_dispatches_total", "tenant"
        )
        return {tenant: int(count) for tenant, count in sorted(series.items())}

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the registry instruments."""
        return self.registry.to_prometheus()

    def throughput(self) -> float:
        """Fleet requests per second (same definition as per-engine
        :meth:`~repro.serving.metrics.Metrics.throughput`)."""
        with self._lock:
            records = list(self._records)
        return span_throughput(records)

    def latency_summary(self) -> dict[str, float]:
        with self._lock:
            values = [r.latency for r in self._records]
        return summarize(values)

    def queue_wait_summary(self) -> dict[str, float]:
        with self._lock:
            values = [r.queue_wait for r in self._records]
        return summarize(values)

    def snapshot(self, replica_metrics: "dict[int, Metrics] | None" = None) -> dict:
        """JSON-able fleet summary.

        ``replica_metrics`` (id -> per-engine :class:`Metrics`) adds the
        engine-side view: per-replica snapshots plus a fleet-merged
        occupancy histogram and queue-wait summary computed from the raw
        per-engine records via :meth:`Metrics.merged`.
        """
        with self._lock:
            events = [event.as_dict() for event in self.events]
        snapshot = {
            "completed": self.completed,
            "failed": self.failed,
            "throughput_rps": self.throughput(),
            "latency_s": self.latency_summary(),
            "queue_wait_s": self.queue_wait_summary(),
            "dispatches": {
                str(rid): count for rid, count in self.dispatch_counts().items()
            },
            "tenants": self.tenant_counts(),
            "affinity": {
                "hits": self.affinity_hits,
                "misses": self.affinity_misses,
                "hit_rate": self.affinity_hit_rate(),
                "sessions_placed": self.sessions_placed,
            },
            "migrations": {
                "count": self.migrations,
                "bytes": self.migrated_bytes,
                "sessions_rehomed": self.sessions_rehomed,
            },
            "cache": {
                "hit_rate": self.cache_hit_rate(),
                "hits": sum(1 for r in self.records() if r.cache_hit),
            },
            "prefixes": {
                "shared_adoptions": self.prefix_adoptions_shared,
                "private_adoptions": self.prefix_adoptions_private,
            },
            "failovers": self.failovers,
            "retries": self.retries,
            "events": events,
        }
        if replica_metrics is not None:
            merged = Metrics.merged(list(replica_metrics.values()))
            occupancy: Counter[int] = Counter()
            for metrics in replica_metrics.values():
                occupancy.update(metrics.batch_occupancy())
            snapshot["engines"] = {
                "per_replica": {
                    str(rid): metrics.snapshot()
                    for rid, metrics in sorted(replica_metrics.items())
                },
                "batch_occupancy": {
                    str(size): count
                    for size, count in sorted(occupancy.items())
                },
                "queue_wait_s": merged.queue_wait_summary(),
            }
        return snapshot
