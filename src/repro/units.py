"""Physical unit constants and conversion helpers.

All quantities inside :mod:`repro` are stored in SI base units (watts,
joules, seconds, metres squared).  The constants below convert the
engineering units used in the paper (mW, µm², ps, GHz, dB, ...) to and
from SI so that module code reads like the paper's tables.
"""

from __future__ import annotations

import math

# -- power ------------------------------------------------------------------
MW = 1e-3  #: one milliwatt in watts
UW = 1e-6  #: one microwatt in watts

# -- energy -----------------------------------------------------------------
PJ = 1e-12  #: one picojoule in joules
FJ = 1e-15  #: one femtojoule in joules
MJ = 1e-3  #: one millijoule in joules

# -- time -------------------------------------------------------------------
PS = 1e-12  #: one picosecond in seconds
NS = 1e-9  #: one nanosecond in seconds
US = 1e-6  #: one microsecond in seconds
MS = 1e-3  #: one millisecond in seconds

# -- frequency --------------------------------------------------------------
GHZ = 1e9  #: one gigahertz in hertz
THZ = 1e12  #: one terahertz in hertz

# -- area -------------------------------------------------------------------
UM2 = 1e-12  #: one square micrometre in square metres
MM2 = 1e-6  #: one square millimetre in square metres

# -- length -----------------------------------------------------------------
NM = 1e-9  #: one nanometre in metres
UM = 1e-6  #: one micrometre in metres

# -- physical constants -----------------------------------------------------
SPEED_OF_LIGHT = 299_792_458.0  #: vacuum speed of light, m/s


def db_to_linear(db: float) -> float:
    """Convert a power ratio expressed in decibels to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises:
        ValueError: if ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive, got {watts}")
    return linear_to_db(watts / 1e-3)
