"""Windowed metric time series and multi-window SLO burn-rate alerts.

:class:`TimeSeriesRecorder` samples a
:class:`~repro.obs.registry.MetricsRegistry` snapshot on a cadence and
answers *windowed* questions — counter deltas, rates, and histogram
distributions over the trailing W seconds — by differencing cumulative
snapshots, the standard Prometheus evaluation model.  Everything is
driven by explicit timestamps, so under a
:class:`~repro.serving.clock.SimulatedClock` the sample series and
every derived number are exact functions of the workload.

:class:`SLOMonitor` evaluates service-level objectives on top.  An
objective states a *good-event* target (``target=0.95`` = 95% of
requests good); the monitor measures the bad-event fraction over a
window and converts it to a **burn rate** — how many times faster than
sustainable the error budget ``1 - target`` is being consumed:

    burn = bad_fraction(window) / (1 - target)

Alerting uses the SRE multi-window rule: a (long, short) window pair
fires only when *both* burn rates exceed the threshold — the long
window proves the budget spend is real, the short window proves it is
still happening (fast reset).  Transitions land in a deterministic
alert ledger (``benchmarks/bench_obs_stream.py`` gates its exact
reproducibility), and :meth:`SLOMonitor.firing` feeds the
:class:`~repro.cluster.autoscaler.Autoscaler`'s optional SLO input.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Alert",
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "SLObjective",
    "SLOMonitor",
    "TimeSeriesRecorder",
    "error_rate_objective",
    "latency_objective",
]


class TimeSeriesRecorder:
    """Cadenced registry snapshots with windowed-delta reads.

    Args:
        registry: the :class:`MetricsRegistry` to sample.
        interval_s: minimum spacing between samples (:meth:`maybe_sample`
            is a no-op until it elapses).
        max_samples: ring bound on retained samples — memory stays
            O(max_samples) on unbounded runs; windows longer than the
            retained horizon clip to the oldest sample.
    """

    def __init__(
        self,
        registry,
        *,
        interval_s: float = 1.0,
        max_samples: int = 512,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.registry = registry
        self.interval_s = interval_s
        self._samples: deque[tuple[float, dict]] = deque(maxlen=max_samples)
        self._last_sample_at = -float("inf")

    # -- write side -----------------------------------------------------------
    def sample(self, now: float) -> None:
        """Record one snapshot at ``now`` unconditionally."""
        self._last_sample_at = now
        self._samples.append((now, self.registry.snapshot()))

    def maybe_sample(self, now: float) -> bool:
        """Sample if the cadence interval has elapsed; did it?"""
        if now - self._last_sample_at < self.interval_s:
            return False
        self.sample(now)
        return True

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def latest_time(self) -> float | None:
        return self._samples[-1][0] if self._samples else None

    # -- window selection -----------------------------------------------------
    def _window_pair(self, window_s: float) -> tuple[dict, dict] | None:
        """(baseline, latest) snapshots spanning the trailing window.

        The baseline is the newest sample at or before
        ``latest - window_s`` (clipping to the oldest retained sample),
        so the delta covers *at least* the requested window once enough
        history exists.
        """
        if len(self._samples) < 2:
            return None
        latest_t, latest = self._samples[-1]
        cutoff = latest_t - window_s
        baseline = self._samples[0][1]
        for t, snap in self._samples:
            if t <= cutoff:
                baseline = snap
            else:
                break
        return baseline, latest

    @staticmethod
    def _value(snapshot: dict, name: str, labels: dict | None) -> Any:
        wanted = {str(k): str(v) for k, v in (labels or {}).items()}
        for row in snapshot.get(name, []):
            if row["labels"] == wanted:
                return row["value"]
        return None

    # -- reads ----------------------------------------------------------------
    def counter_delta(
        self, name: str, window_s: float, labels: dict | None = None
    ) -> float:
        """Counter increase over the trailing window (0.0 pre-history)."""
        pair = self._window_pair(window_s)
        if pair is None:
            return 0.0
        baseline, latest = pair
        end = self._value(latest, name, labels) or 0.0
        start = self._value(baseline, name, labels) or 0.0
        return float(end) - float(start)

    def rate(
        self, name: str, window_s: float, labels: dict | None = None
    ) -> float:
        """Counter increase per second over the trailing window."""
        pair = self._window_pair(window_s)
        if pair is None:
            return 0.0
        delta = self.counter_delta(name, window_s, labels)
        # Actual elapsed time of the differenced pair, not the nominal
        # window — clipped windows report their true rate.
        latest_t = self._samples[-1][0]
        baseline_t = self._samples[0][0]
        cutoff = latest_t - window_s
        for t, _ in self._samples:
            if t <= cutoff:
                baseline_t = t
            else:
                break
        elapsed = latest_t - baseline_t
        return delta / elapsed if elapsed > 0 else 0.0

    def histogram_delta(
        self, name: str, window_s: float, labels: dict | None = None
    ) -> dict:
        """``{"count", "sum", "buckets"}`` deltas over the window.

        ``buckets`` maps each finite bound (as float) to its cumulative
        observation-count delta; ``count`` includes the implicit
        ``+Inf`` bucket.
        """
        empty = {"count": 0.0, "sum": 0.0, "buckets": {}}
        pair = self._window_pair(window_s)
        if pair is None:
            return empty
        baseline, latest = pair
        end = self._value(latest, name, labels)
        if end is None:
            return empty
        start = self._value(baseline, name, labels) or {
            "count": 0, "sum": 0.0, "buckets": {},
        }
        start_buckets = start.get("buckets", {})
        return {
            "count": float(end["count"]) - float(start.get("count", 0)),
            "sum": float(end["sum"]) - float(start.get("sum", 0.0)),
            "buckets": {
                float(bound): count - float(start_buckets.get(bound, 0))
                for bound, count in end["buckets"].items()
            },
        }

    def fraction_above(
        self,
        name: str,
        threshold: float,
        window_s: float,
        labels: dict | None = None,
    ) -> float:
        """Fraction of window observations above ``threshold``.

        Resolved at bucket granularity: the smallest bound at or above
        the threshold splits good from bad (thresholds between bounds
        round the split up, the conservative direction for an SLO).
        With no bound at or above the threshold only the ``+Inf``
        residue counts as bad.
        """
        delta = self.histogram_delta(name, window_s, labels)
        total = delta["count"]
        if total <= 0:
            return 0.0
        bounds = sorted(delta["buckets"])
        at_or_below = 0.0
        for bound in bounds:
            if bound >= threshold:
                at_or_below = delta["buckets"][bound]
                break
        else:
            at_or_below = delta["buckets"][bounds[-1]] if bounds else 0.0
        return max(total - at_or_below, 0.0) / total

    def percentile(
        self,
        name: str,
        q: float,
        window_s: float,
        labels: dict | None = None,
    ) -> float | None:
        """Bucket-resolved q-quantile of window observations.

        Returns the smallest bucket bound covering the quantile
        (Prometheus ``histogram_quantile``'s upper-bound flavour
        without interpolation), ``inf`` when it falls in the ``+Inf``
        bucket, and ``None`` with no observations.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        delta = self.histogram_delta(name, window_s, labels)
        total = delta["count"]
        if total <= 0:
            return None
        needed = q * total
        for bound in sorted(delta["buckets"]):
            if delta["buckets"][bound] >= needed:
                return bound
        return float("inf")


#: SLO kinds: latency-style (histogram + threshold) or an error ratio.
KIND_LATENCY = "latency"
KIND_ERROR_RATE = "error_rate"


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective.

    ``target`` is the good-event fraction promised (0.95 = "95% of
    requests are good"); the error budget is ``1 - target``.  Latency
    kinds read a histogram (``metric``) against ``threshold_s``;
    error-rate kinds ratio a bad counter over total counters.
    """

    name: str
    kind: str
    target: float
    metric: str = ""
    threshold_s: float = 0.0
    bad_metric: str = ""
    total_metrics: tuple[str, ...] = ()
    labels: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (KIND_LATENCY, KIND_ERROR_RATE):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == KIND_LATENCY and not self.metric:
            raise ValueError(f"latency objective {self.name!r} needs a metric")
        if self.kind == KIND_ERROR_RATE and not (
            self.bad_metric and self.total_metrics
        ):
            raise ValueError(
                f"error-rate objective {self.name!r} needs bad_metric "
                "and total_metrics"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.target


def latency_objective(
    name: str,
    metric: str,
    threshold_s: float,
    *,
    target: float = 0.95,
    labels: dict | None = None,
) -> SLObjective:
    """Objective: ``target`` of observations finish within ``threshold_s``."""
    return SLObjective(
        name=name,
        kind=KIND_LATENCY,
        target=target,
        metric=metric,
        threshold_s=threshold_s,
        labels=tuple(sorted((labels or {}).items())),
    )


def error_rate_objective(
    name: str,
    bad_metric: str,
    total_metrics: tuple[str, ...],
    *,
    target: float = 0.999,
) -> SLObjective:
    """Objective: at most ``1 - target`` of requests fail."""
    return SLObjective(
        name=name,
        kind=KIND_ERROR_RATE,
        target=target,
        bad_metric=bad_metric,
        total_metrics=tuple(total_metrics),
    )


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short) burn-rate window pair with its threshold."""

    label: str
    long_s: float
    short_s: float
    max_burn: float

    def __post_init__(self) -> None:
        if not 0 < self.short_s <= self.long_s:
            raise ValueError(
                f"need 0 < short_s <= long_s, got short={self.short_s}, "
                f"long={self.long_s}"
            )
        if self.max_burn <= 0:
            raise ValueError(f"max_burn must be > 0, got {self.max_burn}")


#: The classic SRE pairs: page on fast burn, ticket on slow burn.
DEFAULT_BURN_WINDOWS = (
    BurnWindow("fast", long_s=3600.0, short_s=300.0, max_burn=14.4),
    BurnWindow("slow", long_s=6 * 3600.0, short_s=1800.0, max_burn=6.0),
)


@dataclass(frozen=True)
class Alert:
    """One ledger entry: an objective/window pair changed state."""

    time: float
    objective: str
    window: str
    state: str  # "firing" | "resolved"
    burn_long: float
    burn_short: float

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "objective": self.objective,
            "window": self.window,
            "state": self.state,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
        }


@dataclass
class _PairState:
    firing: bool = False


class SLOMonitor:
    """Evaluates objectives over a recorder; keeps the alert ledger.

    Drive it with :meth:`tick` (the cluster's ``maintain()`` does, when
    wired via ``slo_monitor=``): each tick cadence-samples the recorder
    and, on its own evaluation cadence, recomputes every
    (objective, window) burn pair, appending firing/resolved
    transitions to :attr:`ledger`.
    """

    def __init__(
        self,
        objectives,
        recorder: TimeSeriesRecorder,
        *,
        windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
        eval_interval_s: float | None = None,
    ) -> None:
        objectives = tuple(objectives)
        if not objectives:
            raise ValueError("SLOMonitor needs at least one objective")
        if not windows:
            raise ValueError("SLOMonitor needs at least one burn window")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.objectives = objectives
        self.recorder = recorder
        self.windows = tuple(windows)
        self.eval_interval_s = (
            eval_interval_s if eval_interval_s is not None
            else recorder.interval_s
        )
        self._last_eval_at = -float("inf")
        self._state: dict[tuple[str, str], _PairState] = {
            (objective.name, window.label): _PairState()
            for objective in objectives
            for window in self.windows
        }
        #: Every firing/resolved transition, in evaluation order.
        self.ledger: list[Alert] = []

    # -- measurement ----------------------------------------------------------
    def bad_fraction(self, objective: SLObjective, window_s: float) -> float:
        """The objective's bad-event fraction over the trailing window."""
        if objective.kind == KIND_LATENCY:
            return self.recorder.fraction_above(
                objective.metric,
                objective.threshold_s,
                window_s,
                labels=dict(objective.labels),
            )
        bad = self.recorder.counter_delta(objective.bad_metric, window_s)
        total = sum(
            self.recorder.counter_delta(name, window_s)
            for name in objective.total_metrics
        )
        return bad / total if total > 0 else 0.0

    def burn_rate(self, objective: SLObjective, window_s: float) -> float:
        """Error-budget consumption speed over the window (1.0 = on pace)."""
        return self.bad_fraction(objective, window_s) / objective.budget

    # -- evaluation -----------------------------------------------------------
    def tick(self, now: float) -> list[Alert]:
        """Sample + evaluate on cadence; returns newly ledgered alerts."""
        self.recorder.maybe_sample(now)
        if now - self._last_eval_at < self.eval_interval_s:
            return []
        self._last_eval_at = now
        new: list[Alert] = []
        for objective in self.objectives:
            for window in self.windows:
                burn_long = self.burn_rate(objective, window.long_s)
                burn_short = self.burn_rate(objective, window.short_s)
                firing = (
                    burn_long > window.max_burn
                    and burn_short > window.max_burn
                )
                state = self._state[(objective.name, window.label)]
                if firing != state.firing:
                    state.firing = firing
                    alert = Alert(
                        time=now,
                        objective=objective.name,
                        window=window.label,
                        state="firing" if firing else "resolved",
                        burn_long=burn_long,
                        burn_short=burn_short,
                    )
                    self.ledger.append(alert)
                    new.append(alert)
        return new

    # -- read side ------------------------------------------------------------
    def firing(self) -> list[str]:
        """Objective names with any window currently firing (sorted)."""
        return sorted(
            {
                name
                for (name, _), state in self._state.items()
                if state.firing
            }
        )

    def ledger_dicts(self) -> list[dict]:
        """The alert ledger as JSON-able dicts (the determinism gate)."""
        return [alert.as_dict() for alert in self.ledger]

    def status(self) -> list[dict]:
        """Per-objective live status rows (the ``repro top`` feed)."""
        rows = []
        for objective in self.objectives:
            windows = {
                window.label: {
                    "burn_long": self.burn_rate(objective, window.long_s),
                    "burn_short": self.burn_rate(objective, window.short_s),
                    "max_burn": window.max_burn,
                    "firing": self._state[
                        (objective.name, window.label)
                    ].firing,
                }
                for window in self.windows
            }
            rows.append(
                {
                    "objective": objective.name,
                    "firing": any(w["firing"] for w in windows.values()),
                    "windows": windows,
                }
            )
        return rows
