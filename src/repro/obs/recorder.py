"""Flight recorder: a bounded ring of recent telemetry + postmortems.

Production incidents are diagnosed from what happened *just before*
the failure, but streaming export may have sampled those spans away
and the full collector may be unbounded.  :class:`FlightRecorder`
keeps a fixed-size ring buffer (``collections.deque(maxlen=...)``) of
the most recent finished spans and annotated events, costing O(capacity)
memory forever, and freezes a **postmortem bundle** — recent spans,
recent events, an optional :class:`~repro.obs.registry.MetricsRegistry`
snapshot, and caller context — whenever a failure trigger fires.

The serving stack wires the triggers in: a doomed session or a
:class:`~repro.serving.request.ServingError` inside
:class:`~repro.serving.engine.ServingEngine`, and a failed replica in
:class:`~repro.cluster.cluster.ServingCluster` (``fail_replica()`` —
fault injection is a first-class observability scenario).  Everything
is clock-injected, so under a
:class:`~repro.serving.clock.SimulatedClock` the bundle contents are a
deterministic function of the workload.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro.obs.trace import Span

__all__ = ["FlightRecorder"]


class _MonotonicClock:
    """Fallback clock when none is injected (wall-clock recording)."""

    real = True

    @staticmethod
    def now() -> float:
        return time.monotonic()


class FlightRecorder:
    """Fixed-capacity ring of recent spans/events with bundle dumps.

    The recorder is a collector sink (``add``/``on_end``) so it can ride
    behind a tracer via :class:`~repro.obs.stream.FanoutSink`, *and* a
    standalone event log (:meth:`note`) for layers that run untraced —
    the engine and cluster call ``note`` directly, so postmortems work
    with tracing off.

    Args:
        capacity: ring size for spans and events (each).
        clock: ``now() -> float`` time source; wall monotonic default.
        dump_dir: when set, every :meth:`trigger` also writes
            ``postmortem-<seq>.json`` here (directory created lazily).
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        clock=None,
        dump_dir: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock if clock is not None else _MonotonicClock()
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._lock = threading.Lock()
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._events: deque[dict] = deque(maxlen=capacity)
        #: Every frozen bundle, in trigger order.
        self.bundles: list[dict] = []
        #: Paths of bundles written to ``dump_dir``.
        self.dumped: list[Path] = []

    # -- collector sink interface ---------------------------------------------
    def add(self, span: Span) -> None:
        """Span creation: nothing to record until it finishes."""

    def on_end(self, span: Span) -> None:
        """Ring-buffer the finished span's serialized form."""
        snapshot = span.as_dict()
        with self._lock:
            self._spans.append(snapshot)

    # -- event log ------------------------------------------------------------
    def note(self, name: str, **attrs: Any) -> None:
        """Record one annotated event at the clock's current instant."""
        event = {"name": name, "time": self.clock.now(), "attrs": attrs}
        with self._lock:
            self._events.append(event)

    # -- postmortems ----------------------------------------------------------
    def trigger(
        self,
        reason: str,
        *,
        registry=None,
        snapshot: dict | None = None,
        **context: Any,
    ) -> dict:
        """Freeze a postmortem bundle (and dump it, when configured).

        Args:
            reason: what fired (``"replica_failed"``, ``"doomed_session"``,
                ``"serving_error"``, ...).
            registry: optional :class:`MetricsRegistry` whose
                ``snapshot()`` is embedded.
            snapshot: optional extra state dict (e.g. the cluster's
                fleet snapshot).
            context: free-form JSON-able details (ids, error names).
        """
        with self._lock:
            sequence = len(self.bundles)
            bundle = {
                "reason": reason,
                "time": self.clock.now(),
                "sequence": sequence,
                "context": dict(context),
                "spans": list(self._spans),
                "events": list(self._events),
                "registry": registry.snapshot() if registry is not None else None,
                "snapshot": snapshot,
            }
            self.bundles.append(bundle)
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / f"postmortem-{sequence:03d}.json"
            path.write_text(json.dumps(bundle, indent=2, sort_keys=True))
            with self._lock:
                self.dumped.append(path)
        return bundle

    # -- introspection --------------------------------------------------------
    def recent_spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def recent_events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop ring contents (bundles already frozen are kept)."""
        with self._lock:
            self._spans.clear()
            self._events.clear()

    def attach(self, tracer) -> None:
        """Tee this recorder behind an existing tracer's collector."""
        from repro.obs.stream import FanoutSink

        tracer.collector = FanoutSink(tracer.collector, self)
