"""Streaming span export with deterministic head-based trace sampling.

The in-memory :class:`~repro.obs.trace.SpanCollector` keeps every span
until the run ends — fine for a 12-request demo, unbounded for a
long-lived fleet.  :class:`StreamingSpanWriter` is the bounded-memory
alternative: it implements the collector sink interface (``add`` +
``on_end``), serializes each span's canonical JSONL line the moment the
tracer stamps its end, and drops the span — peak residency is the
number of *open* spans, not the total span count.

Sampling is **head-based and deterministic**: the keep/drop decision is
made once per trace, at its root span, from a stable hash of the root
(``crc32(f"{name}:{span_id}") % rate``) — never from ``hash()``, whose
value changes per process under ``PYTHONHASHSEED``.  Every span of a
kept trace is written; spans of dropped traces are written anyway when
they carry *incident* markers (error/doom/failover/eviction events or
an ``error`` attribute), so sampling can thin a healthy run's bulk
without ever losing the spans a postmortem needs.

Because sampling only filters the emitted lines — span ids, times, and
contents are produced by the tracer exactly as in an unsampled run —
a sampled dump is a strict, deterministic subset of the unsampled dump
of the same seed (``benchmarks/bench_obs_stream.py`` gates this).
"""

from __future__ import annotations

import threading
import zlib
from pathlib import Path
from typing import IO

from repro.obs.export import span_line
from repro.obs.trace import Span, SpanCollector

__all__ = [
    "INCIDENT_EVENTS",
    "FanoutSink",
    "StreamingSpanWriter",
    "TraceSampler",
    "is_incident",
    "sampled_lines",
]

#: Span event names that mark a span as incident-bearing: sampling
#: never drops these (they are exactly the events the serving/cluster
#: layers emit on failures, dooms, failovers, and evictions).
INCIDENT_EVENTS = frozenset(
    {
        "abandoned",
        "doom",
        "doomed",
        "evicted",
        "failed",
        "failover",
        "preempt",
        "rejected",
        "replica_failed",
        "retry",
    }
)


def is_incident(span: Span) -> bool:
    """Does this span carry an error/doom/failover marker?"""
    if "error" in span.attrs:
        return True
    return any(event.name in INCIDENT_EVENTS for event in span.events)


class TraceSampler:
    """Deterministic head-based sampling: keep 1-in-``rate`` traces.

    The decision is a pure function of the trace root's identity
    (name and span id), so equal workloads sample identically across
    processes and reruns — no RNG, no ``PYTHONHASHSEED`` sensitivity.
    ``rate=1`` keeps everything.
    """

    def __init__(self, rate: int = 1) -> None:
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1, got {rate}")
        self.rate = rate

    def keep_trace(self, root: Span) -> bool:
        """Keep the trace rooted at ``root``?"""
        if self.rate == 1:
            return True
        digest = zlib.crc32(f"{root.name}:{root.span_id}".encode())
        return digest % self.rate == 0


class StreamingSpanWriter:
    """Collector-compatible sink that writes spans out as they end.

    Plug it into a tracer (``Tracer(collector=StreamingSpanWriter(...))``)
    and every finished span is immediately serialized to its canonical
    JSONL line and released — the writer retains only the open spans
    plus per-live-trace sampling state.  Output order is *end order*
    (deterministic under a :class:`~repro.serving.clock.SimulatedClock`),
    versus the batch dump's id order; sort lines to compare dumps.

    Args:
        sink: a path (opened for writing, truncated) or a file-like
            object with ``write`` (not closed on :meth:`close` unless
            the writer opened it).
        sampler: optional :class:`TraceSampler`; without one every
            span is written.

    Stats: ``spans_seen`` / ``spans_written`` / ``spans_dropped`` count
    lifetime spans, ``open_spans`` / ``peak_open`` expose the residency
    bound ``benchmarks/bench_obs_stream.py`` gates.
    """

    def __init__(
        self,
        sink: str | Path | IO[str],
        *,
        sampler: TraceSampler | None = None,
    ) -> None:
        if hasattr(sink, "write"):
            self._handle: IO[str] = sink  # type: ignore[assignment]
            self._owns_handle = False
            self.path: Path | None = None
        else:
            self.path = Path(sink)
            self._handle = open(self.path, "w")
            self._owns_handle = True
        self.sampler = sampler
        self._lock = threading.Lock()
        self._open: dict[int, Span] = {}
        #: span id -> its trace root's span id, for every live trace.
        self._root_of: dict[int, int] = {}
        #: root id -> member span ids (pruned when the trace finishes).
        self._members: dict[int, list[int]] = {}
        #: root id -> open span count of the trace.
        self._open_in_trace: dict[int, int] = {}
        #: root id -> keep decision (made once, at the root).
        self._keep: dict[int, bool] = {}
        self._ended_roots: set[int] = set()
        self.spans_seen = 0
        self.spans_written = 0
        self.spans_dropped = 0
        self.peak_open = 0
        self._closed = False

    # -- sink interface -------------------------------------------------------
    def add(self, span: Span) -> None:
        """Register an opened span (called by the tracer at creation)."""
        with self._lock:
            self.spans_seen += 1
            # Per-trace bookkeeping only pays off when a sampler needs
            # the root decision; the everything-kept path skips it so
            # streaming costs barely more than collecting (the overhead
            # ceiling bench_obs_stream.py gates).
            if self.sampler is not None:
                root = span.span_id
                if span.parent_id is not None:
                    # A parent outside any live trace (already pruned,
                    # or foreign) orphans the span: it anchors its own
                    # trace.
                    root = self._root_of.get(span.parent_id, span.span_id)
                self._root_of[span.span_id] = root
                self._members.setdefault(root, []).append(span.span_id)
                self._open_in_trace[root] = (
                    self._open_in_trace.get(root, 0) + 1
                )
                if root == span.span_id:
                    self._keep[root] = self.sampler.keep_trace(span)
            self._open[span.span_id] = span
            if len(self._open) > self.peak_open:
                self.peak_open = len(self._open)

    def on_end(self, span: Span) -> None:
        """Serialize and release a finished span (tracer callback)."""
        with self._lock:
            if self._open.pop(span.span_id, None) is None:
                return  # never added here, or already flushed
            self._emit_locked(span)
            if self.sampler is None:
                return
            root = self._root_of[span.span_id]
            if root == span.span_id:
                self._ended_roots.add(root)
            self._open_in_trace[root] -= 1
            if self._open_in_trace[root] == 0 and root in self._ended_roots:
                self._prune_trace_locked(root)

    # -- internals ------------------------------------------------------------
    def _emit_locked(self, span: Span) -> None:
        if self.sampler is None:
            keep = True
        else:
            keep = self._keep.get(self._root_of.get(span.span_id, -1), True)
        if keep or is_incident(span):
            self._handle.write(span_line(span) + "\n")
            self.spans_written += 1
        else:
            self.spans_dropped += 1

    def _prune_trace_locked(self, root: int) -> None:
        for span_id in self._members.pop(root, ()):
            self._root_of.pop(span_id, None)
        self._open_in_trace.pop(root, None)
        self._keep.pop(root, None)
        self._ended_roots.discard(root)

    # -- lifecycle ------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Spans currently held (started but not yet ended)."""
        with self._lock:
            return len(self._open)

    def flush(self) -> None:
        with self._lock:
            self._handle.flush()

    def close(self) -> None:
        """Flush still-open spans (in id order) and release the sink.

        Un-ended spans at close (a crash, an abandoned handle) are
        written in their current state — ``end`` serializes as
        ``start`` — so the streamed file loses nothing the in-memory
        collector would have kept.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for span_id in sorted(self._open):
                self._emit_locked(self._open[span_id])
            self._open.clear()
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()

    def __enter__(self) -> "StreamingSpanWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class FanoutSink:
    """Tee one tracer into several collector sinks.

    Composes the in-memory :class:`SpanCollector`, a
    :class:`StreamingSpanWriter`, and a
    :class:`~repro.obs.recorder.FlightRecorder` behind one tracer.
    Reads (``spans``/``__len__``) delegate to the first sink that
    supports them, so exports over the fanout keep working.
    """

    def __init__(self, *sinks) -> None:
        if not sinks:
            raise ValueError("FanoutSink needs at least one sink")
        self.sinks = tuple(sinks)

    def add(self, span: Span) -> None:
        for sink in self.sinks:
            sink.add(span)

    def on_end(self, span: Span) -> None:
        for sink in self.sinks:
            on_end = getattr(sink, "on_end", None)
            if on_end is not None:
                on_end(span)

    def spans(self) -> list[Span]:
        for sink in self.sinks:
            if isinstance(sink, SpanCollector):
                return sink.spans()
        raise TypeError("no SpanCollector among the fanout sinks")

    def __len__(self) -> int:
        for sink in self.sinks:
            if isinstance(sink, SpanCollector):
                return len(sink)
        return 0


def sampled_lines(
    collector: SpanCollector, sampler: TraceSampler
) -> list[str]:
    """The sampled JSONL lines of a finished in-memory collector.

    Applies the same per-trace keep decision and incident override as
    a :class:`StreamingSpanWriter` configured with ``sampler``, over
    spans in id order — so the result is the sorted-line equal of a
    streamed sampled dump and a strict subset of
    :func:`~repro.obs.export.span_lines` for ``rate > 1`` workloads
    with multiple traces.
    """
    spans = collector.spans()
    by_id = {span.span_id: span for span in spans}
    keep: dict[int, bool] = {}
    lines = []
    for span in spans:
        root = span
        while root.parent_id is not None and root.parent_id in by_id:
            root = by_id[root.parent_id]
        decision = keep.get(root.span_id)
        if decision is None:
            decision = sampler.keep_trace(root)
            keep[root.span_id] = decision
        if decision or is_incident(span):
            lines.append(span_line(span))
    return lines
