"""Unified telemetry registry: counters, gauges, histograms with labels.

:class:`MetricsRegistry` is the shared substrate the per-engine
:class:`~repro.serving.metrics.Metrics` and fleet-level
:class:`~repro.cluster.metrics.ClusterMetrics` recorders sit on: one
get-or-create instrument table keyed by ``(name, labels)``, one JSON
snapshot, and one Prometheus text exposition — so every layer's
telemetry shares naming, label semantics, and export formats.

Three instrument kinds:

* :class:`Counter` — monotone accumulator (``inc``).  Exact occupancy
  histograms are modelled as counter series labelled by bucket value
  (``size="4"``), which keeps them lossless across merges.
* :class:`Gauge` — last-written value (``set``).
* :class:`Histogram` — cumulative-bucket distribution (``observe``)
  with Prometheus ``le`` semantics (``+Inf`` implicit, ``sum`` and
  ``count`` tracked exactly).

Merging (:meth:`MetricsRegistry.merge_from`) sums counters and
histograms and takes the latest-written gauge — the semantics
fleet-level aggregation needs (per-replica recorders merge into one).

Everything is lock-protected and allocation-light; snapshots sort by
name then label so exports are byte-stable for a given state.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the serving layer's latency scales under both real and virtual time).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
    2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (values stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + body + "}"


def _escape(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Integers print bare (``3`` not ``3.0``) for stable, tidy output."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotone accumulator."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def snapshot_value(self) -> float:
        return self.value

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot_value(self) -> float:
        return self.value

    def merge(self, other: "Gauge") -> None:
        self.value = other.value


class Histogram:
    """Cumulative-bucket distribution with exact sum and count."""

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * len(bounds)  # per-bucket (non-cumulative)
        self.inf = 0  # observations above the largest bound
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.counts[index] += 1
        else:
            self.inf += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        return out

    def snapshot_value(self) -> dict:
        return {
            "count": self.total,
            "sum": self.sum,
            "buckets": {
                _format_value(bound): count
                for bound, count in self.cumulative()
            },
        }

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.inf += other.inf
        self.total += other.total
        self.sum += other.sum


class MetricsRegistry:
    """Get-or-create instrument table with JSON + Prometheus export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> label key -> instrument
        self._families: dict[str, dict[tuple, Any]] = {}
        #: name -> (kind, help)
        self._meta: dict[str, tuple[str, str]] = {}

    # -- instrument access ----------------------------------------------------
    def _instrument(
        self, name: str, kind: str, help: str, factory, labels: dict[str, Any]
    ):
        key = _label_key(labels)
        with self._lock:
            meta = self._meta.get(name)
            if meta is None:
                self._meta[name] = (kind, help)
            elif meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {meta[0]}, "
                    f"not {kind}"
                )
            family = self._families.setdefault(name, {})
            instrument = family.get(key)
            if instrument is None:
                instrument = factory()
                family[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._instrument(name, "counter", help, Counter, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._instrument(name, "gauge", help, Gauge, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._instrument(
            name, "histogram", help, lambda: Histogram(buckets), labels
        )

    # -- read side ------------------------------------------------------------
    def series(self, name: str) -> list[tuple[dict[str, str], Any]]:
        """Every ``(labels, instrument)`` of one family, label-sorted."""
        with self._lock:
            family = self._families.get(name, {})
            return [
                (dict(key), instrument)
                for key, instrument in sorted(family.items())
            ]

    def counter_series(self, name: str, label: str) -> dict[str, float]:
        """``{label value: count}`` of a single-label counter family.

        The read path of exact labelled histograms (occupancy counters).
        """
        return {
            labels[label]: instrument.value
            for labels, instrument in self.series(name)
            if label in labels
        }

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._meta)

    def snapshot(self) -> dict:
        """JSON-able dump: name -> list of {labels, kind, value} rows."""
        with self._lock:
            families = {
                name: sorted(family.items())
                for name, family in self._families.items()
            }
            meta = dict(self._meta)
        return {
            name: [
                {
                    "labels": dict(key),
                    "kind": meta[name][0],
                    "value": instrument.snapshot_value(),
                }
                for key, instrument in families[name]
            ]
            for name in sorted(families)
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        with self._lock:
            families = {
                name: sorted(family.items())
                for name, family in self._families.items()
            }
            meta = dict(self._meta)
        lines: list[str] = []
        for name in sorted(families):
            kind, help = meta[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for key, instrument in families[name]:
                if kind == "histogram":
                    running = 0
                    for bound, cumulative in instrument.cumulative():
                        running = cumulative
                        bucket_key = key + (("le", _format_value(bound)),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_key)} "
                            f"{cumulative}"
                        )
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_format_labels(inf_key)} "
                        f"{running + instrument.inf}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{_format_value(instrument.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {instrument.total}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{_format_value(instrument.snapshot_value())}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- merging --------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms sum; gauges take the other's value
        (last write wins).  Families new to this registry are created.
        """
        with other._lock:
            other_families = {
                name: list(family.items())
                for name, family in other._families.items()
            }
            other_meta = dict(other._meta)
        for name, rows in other_families.items():
            kind, help = other_meta[name]
            for key, instrument in rows:
                labels = dict(key)
                if kind == "counter":
                    self.counter(name, help, **labels).merge(instrument)
                elif kind == "gauge":
                    self.gauge(name, help, **labels).merge(instrument)
                else:
                    self.histogram(
                        name, help, buckets=instrument.bounds, **labels
                    ).merge(instrument)
