"""The canonical traced workload behind ``repro trace`` and bench_obs.

A deliberately small — but *fully layered* — serving run: a noisy,
chunk-pipelined :class:`~repro.core.sharding.ShardedDPTC` under a
continuous-batching :class:`~repro.serving.engine.ServingEngine` on a
:class:`~repro.serving.clock.SimulatedClock`.  Tracing it produces the
complete span chain the subsystem promises:

    request (submit/queue/dispatch/complete events)
    engine.iteration -> engine.batch -> shard.matmul -> shard.core
        -> stage.sample / stage.encode / stage.compute / stage.detect

Everything is seeded and single-threaded (manual stepping,
``pipeline_depth=0``), so the resulting span tree — ids, parents,
virtual timestamps, event order — is a pure function of
``(seed, requests)`` and the JSONL dump is byte-identical across
reruns: the determinism gate of ``benchmarks/bench_obs.py`` and the
contract of ``repro trace --seed S``.
"""

from __future__ import annotations

import numpy as np

from repro.core.noise import NoiseModel
from repro.core.sharding import ShardedDPTC
from repro.obs.trace import SpanCollector, Tracer
from repro.serving.clock import SimulatedClock
from repro.serving.config import EngineConfig
from repro.serving.engine import ServingEngine
from repro.serving.scheduler import IterationCost
from repro.serving.servable import Servable


class TracedMatmulServable(Servable):
    """Serves noisy chunked matmuls against a fixed weight matrix.

    Payloads are ``[m, d]`` activations; a batch stacks them and runs
    one ``[batch, m, d] @ [d, n]`` noisy product through a chunked
    sharded engine — the smallest servable that exercises the full
    4-stage hot path under the serving layers.
    """

    name = "traced-matmul"

    def __init__(
        self,
        *,
        seed: int = 0,
        m: int = 4,
        d: int = 16,
        n: int = 8,
        chunk_size: int = 1,
        num_cores: int = 1,
    ) -> None:
        self.m = m
        self.d = d
        #: Exposed as ``executor`` so ``close_executor=True`` engines
        #: release the sharded worker pools on close.
        self.executor = ShardedDPTC(
            num_cores=num_cores,
            noise=NoiseModel.paper_default(),
            chunk_size=chunk_size,
            pipeline_depth=0,
        )
        rng = np.random.default_rng(seed)
        self.weight = rng.uniform(-1.0, 1.0, (d, n))
        self._rng = np.random.default_rng(seed + 1)

    def prepare(self, payload) -> np.ndarray:
        activation = np.asarray(payload, dtype=float)
        if activation.shape != (self.m, self.d):
            raise ValueError(
                f"expected one ({self.m}, {self.d}) activation, "
                f"got {activation.shape}"
            )
        return activation

    def execute(self, requests) -> list[np.ndarray]:
        stacked = np.stack([request.payload for request in requests])
        out = self.executor.matmul(stacked, self.weight, rng=self._rng)
        return [row.copy() for row in out]


def trace_workload_config(max_batch_size: int = 4) -> EngineConfig:
    """The engine config of the canonical traced workload."""
    return EngineConfig(
        max_batch_size=max_batch_size,
        scheduler="continuous",
        iteration_cost=IterationCost(),
    )


def run_workload(
    *,
    traced: bool = False,
    seed: int = 0,
    requests: int = 12,
    max_batch_size: int = 4,
    sink=None,
) -> tuple[SpanCollector | None, list, dict]:
    """Run the demo workload; returns (collector, results, snapshot).

    ``traced=False`` runs the identical workload under the default
    no-op tracer — the disabled baseline ``bench_obs.py`` compares the
    traced run against bit for bit.  The collector is ``None`` in that
    mode.  ``sink`` replaces the tracer's collector (implies tracing):
    this is how ``repro trace --stream`` hangs a
    :class:`~repro.obs.stream.StreamingSpanWriter` under the identical
    workload — spans are *emitted* instead of accumulated, so the
    returned collector is the sink itself.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    clock = SimulatedClock()
    if sink is not None:
        tracer = Tracer(clock=clock, collector=sink)
    else:
        tracer = Tracer(clock=clock) if traced else None
    servable = TracedMatmulServable(seed=seed)
    payload_rng = np.random.default_rng(seed + 2)
    engine = ServingEngine(
        servable,
        config=trace_workload_config(max_batch_size),
        clock=clock,
        tracer=tracer,
        close_executor=True,
    )
    with engine:
        handles = []
        for index in range(requests):
            payload = payload_rng.uniform(
                -1.0, 1.0, (servable.m, servable.d)
            )
            handles.append(
                engine.submit(payload, session_id=f"session-{index % 3}")
            )
            # Interleave arrivals with execution so iterations compose
            # from a moving active set (admissions land mid-run).
            if index % max_batch_size == max_batch_size - 1:
                engine.step()
        engine.run_until_idle()
        results = [handle.result(timeout=0) for handle in handles]
        snapshot = engine.metrics.snapshot()
    return (tracer.collector if tracer is not None else None), results, snapshot


def run_trace_workload(
    *,
    seed: int = 0,
    requests: int = 12,
    max_batch_size: int = 4,
) -> SpanCollector:
    """Run the traced demo workload; returns its span collector.

    Shared by the ``repro trace`` CLI verb, ``bench_obs.py``'s
    span-tree and determinism gates, and the obs test suite — one code
    path, so the CLI's byte-determinism promise is exactly what the
    bench gates.
    """
    collector, _, _ = run_workload(
        traced=True, seed=seed, requests=requests, max_batch_size=max_batch_size
    )
    return collector
