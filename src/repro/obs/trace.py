"""Deterministic structured tracing: spans, events, and the collector.

The serving stack spans request -> router -> iteration scheduler ->
sharded engine -> 4-stage hot path, and "where did the p99 go" needs
one request followed across all of them.  :class:`Tracer` emits nested
:class:`Span` trees with attributes and timestamped events; every
timestamp comes from an injected clock, so under a
:class:`~repro.serving.clock.SimulatedClock` the whole tree — ids,
parent links, times, event order — is a pure function of the workload
and therefore byte-for-byte reproducible across reruns.

Design rules that keep the layer big-but-safe:

* **Disabled by default.**  Every instrumented call site reads the
  ambient tracer (:func:`current_tracer`), which is the
  :data:`NULL_TRACER` singleton unless a real tracer was activated or
  passed in.  The null tracer's ``enabled`` flag gates instrumentation
  behind one attribute read, and its span handles swallow attribute and
  event writes — the disabled hot path executes the exact pre-tracing
  code.
* **Caller-thread id assignment.**  Span ids are allocated sequentially
  under the tracer lock.  Single-threaded regimes (manual-mode engines,
  ``pipeline_depth=0`` hot paths) therefore produce identical id
  sequences on every run; the export layer additionally sorts by id, so
  dumps are stable wherever creation order is.
* **Explicit parents cross threads.**  The ambient current span is a
  ``contextvars`` binding, which does not follow work onto pool
  threads; instrumentation that fans out (sharded cores, prefetch
  stages) captures the parent span on the caller thread and passes it
  explicitly (``tracer.span(..., parent=span)`` or
  :meth:`Tracer.activate`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class SpanEvent:
    """One timestamped point event inside a span."""

    name: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "time": self.time, "attrs": dict(self.attrs)}


class Span:
    """One timed operation in the trace tree.

    Spans are mutable while open (attributes and events accumulate) and
    frozen by convention once :meth:`Tracer.end` stamps ``end``.  The
    tracer reference exists so :meth:`add_event` can read the injected
    clock; it is not part of the serialized form.
    """

    __slots__ = (
        "span_id", "parent_id", "name", "start", "end", "attrs", "events",
        "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        tracer: "Tracer",
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.events: list[SpanEvent] = []
        self._tracer = tracer

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        """Record a point event at the tracer clock's current instant."""
        self.events.append(SpanEvent(name, self._tracer.now(), attrs))

    def as_dict(self) -> dict:
        """JSON-able form (stable key order for byte-stable dumps)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "attrs": dict(self.attrs),
            "events": [event.as_dict() for event in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.span_id}, {self.name!r}, parent={self.parent_id})"


class _NullSpan:
    """Inert span handle: every write is a no-op, safely shareable."""

    __slots__ = ()
    span_id = -1
    parent_id = None
    name = "null"
    start = 0.0
    end = 0.0
    attrs: dict[str, Any] = {}
    events: list[SpanEvent] = []

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def as_dict(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()


class SpanCollector:
    """Thread-safe in-memory sink of finished (and still-open) spans.

    Spans register at *creation* so an un-ended span (crash, abandoned
    handle) is still visible in the dump.  :meth:`spans` returns them
    sorted by span id — creation order under the tracer lock — so the
    export is stable even when pool threads finished out of order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def on_end(self, span: Span) -> None:
        """Called by the tracer when a span's end is first stamped.

        A no-op here (the collector already holds the span); streaming
        sinks (:class:`~repro.obs.stream.StreamingSpanWriter`) override
        it to serialize the finished span and drop it from memory.
        """

    def spans(self) -> list[Span]:
        with self._lock:
            return sorted(self._spans, key=lambda span: span.span_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def roots(self) -> list[Span]:
        """Spans with no parent, in id order."""
        return [span for span in self.spans() if span.parent_id is None]

    def children_of(self, span_id: int) -> list[Span]:
        return [span for span in self.spans() if span.parent_id == span_id]

    def find(self, name: str) -> list[Span]:
        """Spans with the given name, in id order."""
        return [span for span in self.spans() if span.name == name]


class _MonotonicClock:
    """Fallback clock when none is injected (wall-clock tracing)."""

    real = True

    @staticmethod
    def now() -> float:
        return time.monotonic()


class Tracer:
    """Clock-injected span factory reporting into a collector.

    Args:
        clock: any object with ``now() -> float`` (the engine's
            :class:`~repro.serving.clock.SimulatedClock` for
            deterministic traces); wall-clock monotonic time by default.
        collector: sink for created spans; a fresh
            :class:`SpanCollector` by default.
    """

    enabled = True

    def __init__(self, clock=None, collector: SpanCollector | None = None) -> None:
        self.clock = clock if clock is not None else _MonotonicClock()
        self.collector = collector if collector is not None else SpanCollector()
        self._lock = threading.Lock()
        self._next_id = 0

    def now(self) -> float:
        return self.clock.now()

    def start_span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span (caller ends it via :meth:`end`).

        The parent defaults to the ambient current span of *this
        context* — pass ``parent=`` explicitly when crossing threads.
        """
        if parent is None:
            parent = _current_span.get()
        parent_id = parent.span_id if isinstance(parent, Span) else None
        start = self.clock.now()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(span_id, parent_id, name, start, self, attrs)
        self.collector.add(span)
        return span

    def end(self, span: Span) -> None:
        """Stamp the span's end time (idempotent keeps the first stamp).

        The first stamp also notifies the collector (``on_end``), the
        hook streaming sinks flush on; repeated ends stay no-ops so a
        span is never exported twice.
        """
        if isinstance(span, Span) and span.end is None:
            span.end = self.clock.now()
            on_end = getattr(self.collector, "on_end", None)
            if on_end is not None:
                on_end(span)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager: open a span and make it the ambient current.

        Nested :meth:`span`/:meth:`start_span` calls in the same context
        parent under it automatically; the previous current span is
        restored on exit.
        """
        span = self.start_span(name, parent=parent, **attrs)
        token = _current_span.set(span)
        try:
            yield span
        finally:
            _current_span.reset(token)
            self.end(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Add an event to the ambient current span (no-op without one)."""
        span = _current_span.get()
        if isinstance(span, Span):
            span.add_event(name, **attrs)

    @contextmanager
    def activate(self, parent: Span | None = None) -> Iterator["Tracer"]:
        """Make this tracer (and optionally ``parent``) ambient.

        Instrumented layers that are not constructor-wired (the sharded
        engine, the hot path) discover the tracer through
        :func:`current_tracer`; this is how an engine or a CLI verb
        turns tracing on for everything beneath it — including pool
        threads, where the caller re-activates with the captured parent.
        """
        tracer_token = _current_tracer.set(self)
        span_token = _current_span.set(parent) if parent is not None else None
        try:
            yield self
        finally:
            if span_token is not None:
                _current_span.reset(span_token)
            _current_tracer.reset(tracer_token)


class NullTracer:
    """The default no-op tracer: tracing off, zero overhead.

    Shares the interface of :class:`Tracer`; every span it hands out is
    the inert :data:`NULL_SPAN` and nothing is recorded.  Call sites
    gate the non-trivial instrumentation on :attr:`enabled`.
    """

    enabled = False
    collector = None

    def now(self) -> float:
        return 0.0

    def start_span(self, name: str, *, parent=None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def end(self, span) -> None:
        pass

    @contextmanager
    def span(self, name: str, *, parent=None, **attrs: Any) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    @contextmanager
    def activate(self, parent=None) -> Iterator["NullTracer"]:
        token = _current_tracer.set(self)
        try:
            yield self
        finally:
            _current_tracer.reset(token)


#: The process-wide default: tracing disabled.
NULL_TRACER = NullTracer()

_current_tracer: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)
_current_span: ContextVar[Span | None] = ContextVar(
    "repro_obs_span", default=None
)


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer (:data:`NULL_TRACER` unless activated)."""
    return _current_tracer.get()


def current_span() -> Span | None:
    """The ambient current span, if any."""
    return _current_span.get()
