"""Live fleet surfaces: the ``repro top`` table and metrics exposition.

Two ways to watch a running fleet:

* :func:`render_fleet_table` / :class:`FleetTop` — an ANSI terminal
  table rendered from :meth:`ServingCluster.snapshot` dicts (replica
  states, dispatch/outstanding counts, latency percentiles, SLO alert
  status).  The renderer is a pure function of the snapshot, so under a
  :class:`~repro.serving.clock.SimulatedClock` every frame is
  byte-deterministic and testable frame-by-frame — the ``repro top``
  CLI verb just loops it.
* :class:`MetricsExposition` — one-shot Prometheus text exposition over
  HTTP (stdlib ``http.server``, ephemeral port, exactly one request),
  behind ``repro metrics --port``.  No server dependency enters the
  repo; scrape-shaped output comes straight from
  :meth:`MetricsRegistry.to_prometheus`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Callable

__all__ = ["FleetTop", "MetricsExposition", "render_fleet_table"]

#: ANSI styles keyed by replica state (reset with _RESET).
_STATE_COLORS = {
    "healthy": "\x1b[32m",   # green
    "draining": "\x1b[33m",  # yellow
    "failed": "\x1b[31m",    # red
    "stopped": "\x1b[2m",    # dim
}
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"

#: Clear screen + home — the frame prefix of a live ``repro top`` loop.
ANSI_HOME = "\x1b[H\x1b[2J"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color and code else text


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}"


def render_fleet_table(
    snapshot: dict,
    *,
    now: float | None = None,
    slo_status: list[dict] | None = None,
    color: bool = True,
    title: str = "repro top",
) -> str:
    """One fleet-dashboard frame from a cluster snapshot dict.

    Pure: equal inputs render equal bytes.  ``slo_status`` takes
    :meth:`SLOMonitor.status` rows; ``now`` stamps the header with the
    (virtual or wall) clock reading.
    """
    lines = []
    header = f"{title} — fleet of {snapshot.get('fleet_size', 0)}"
    if now is not None:
        header += f" (t={now * 1e3:.3f} ms)"
    lines.append(_paint(header, _BOLD, color))
    lines.append(
        f"{'REPLICA':>7}  {'STATE':<8}  {'DISPATCHED':>10}  "
        f"{'OUTSTANDING':>11}  {'BUSY_UNTIL_MS':>13}"
    )
    for rid, row in sorted(
        snapshot.get("replicas", {}).items(), key=lambda item: int(item[0])
    ):
        state = row["state"]
        lines.append(
            f"{rid:>7}  "
            + _paint(f"{state:<8}", _STATE_COLORS.get(state, ""), color)
            + f"  {row['dispatched']:>10}  {row['outstanding']:>11}"
            + f"  {_ms(row['busy_until']):>13}"
        )
    latency = snapshot.get("latency_s", {})
    queue_wait = snapshot.get("queue_wait_s", {})
    lines.append(
        f"fleet: {snapshot.get('completed', 0)} done, "
        f"{snapshot.get('failed', 0)} failed, "
        f"{snapshot.get('failovers', 0)} failovers | "
        f"p95 {latency.get('p95', 0.0) * 1e3:.3f} ms | "
        f"queue p95 {queue_wait.get('p95', 0.0) * 1e3:.3f} ms | "
        f"{snapshot.get('throughput_rps', 0.0):.0f} rps"
    )
    for row in slo_status or []:
        firing = row["firing"]
        badge = _paint(
            "[FIRING]" if firing else "[ok]",
            _STATE_COLORS["failed"] if firing else _STATE_COLORS["healthy"],
            color,
        )
        burns = ", ".join(
            f"{label} {w['burn_long']:.1f}/{w['max_burn']:g}"
            for label, w in sorted(row["windows"].items())
        )
        lines.append(f"slo: {badge} {row['objective']} ({burns})")
    return "\n".join(lines) + "\n"


class FleetTop:
    """Frame source over a live cluster (+ optional SLO monitor).

    ``frame()`` snapshots the cluster and renders one table; the CLI
    loops it with :data:`ANSI_HOME` between frames.  Frames taken at
    equal virtual instants of equal workloads are byte-identical.
    """

    def __init__(self, cluster, *, monitor=None, color: bool = True) -> None:
        self.cluster = cluster
        self.monitor = monitor
        self.color = color
        self.frames_rendered = 0

    def frame(self) -> str:
        self.frames_rendered += 1
        return render_fleet_table(
            self.cluster.snapshot(),
            now=self.cluster.clock.now(),
            slo_status=self.monitor.status() if self.monitor else None,
            color=self.color,
        )


class _Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        body = self.server.produce_text().encode()  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep scrapes off stderr


class MetricsExposition:
    """One-shot Prometheus HTTP exposition of a text producer.

    Binds immediately (``port=0`` picks an ephemeral port, readable via
    :attr:`port` before serving), then :meth:`serve_once` handles
    exactly one HTTP request and returns the text it served.  Enough
    for ``curl``/a scrape smoke test without a long-lived server.
    """

    def __init__(
        self,
        produce_text: Callable[[], str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = HTTPServer((host, port), _Handler)
        self._server.produce_text = produce_text  # type: ignore[attr-defined]
        self._served_text: str | None = None

        original = produce_text

        def capture() -> str:
            self._served_text = original()
            return self._served_text

        self._server.produce_text = capture  # type: ignore[attr-defined]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def serve_once(self, timeout: float | None = 10.0) -> str | None:
        """Block for one request (bounded by ``timeout``); the text served."""
        self._server.timeout = timeout
        try:
            self._server.handle_request()
        finally:
            self._server.server_close()
        return self._served_text

    def close(self) -> None:
        self._server.server_close()


def serve_metrics_once(
    produce_text: Callable[[], str],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Callable[[str], None] | None = None,
    timeout: float | None = 10.0,
) -> str | None:
    """Convenience wrapper: bind, announce the URL, serve one request."""
    exposition = MetricsExposition(produce_text, host=host, port=port)
    if announce is not None:
        announce(exposition.url)
    return exposition.serve_once(timeout=timeout)


def fetch_once(url: str, timeout: float = 10.0) -> str:
    """GET ``url`` and return its body (stdlib urllib; test helper)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def threaded_fetch(url: str, timeout: float = 10.0) -> "threading.Thread":
    """Fire a background GET (used to drive :meth:`serve_once` in-process)."""
    thread = threading.Thread(
        target=fetch_once, args=(url, timeout), daemon=True
    )
    thread.start()
    return thread
