"""Trace export: JSONL span dumps and Chrome trace-event (Perfetto) files.

Two serialized forms of one :class:`~repro.obs.trace.SpanCollector`:

* :func:`to_jsonl` — one JSON object per span, sorted by span id, with
  sorted keys and fixed separators.  Under a simulated clock this dump
  is **byte-for-byte reproducible** across reruns of the same seed
  (the ``repro trace`` determinism gate).
* :func:`to_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / https://ui.perfetto.dev): complete ``"X"``
  events with microsecond timestamps, span attributes and events in
  ``args``.  Parent nesting is conveyed by time containment per track;
  spans map to tracks (``tid``) by their root span so concurrent
  requests render as parallel lanes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import Span, SpanCollector

#: Seconds -> microseconds (the trace-event timestamp unit).
_US = 1e6


def span_lines(collector: SpanCollector) -> list[str]:
    """One canonical JSON line per span, in span-id order."""
    return [
        json.dumps(span.as_dict(), sort_keys=True, separators=(",", ":"))
        for span in collector.spans()
    ]


def to_jsonl(collector: SpanCollector) -> str:
    """The JSONL dump (trailing newline; empty string for no spans)."""
    lines = span_lines(collector)
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(collector: SpanCollector, path: str | Path) -> Path:
    """Write the JSONL dump; returns the path."""
    path = Path(path)
    path.write_text(to_jsonl(collector))
    return path


def _root_of(span: Span, by_id: dict[int, Span]) -> int:
    """The root ancestor's span id (cycle-safe: falls back to self)."""
    seen = set()
    current = span
    while current.parent_id is not None and current.parent_id in by_id:
        if current.span_id in seen:  # pragma: no cover - defensive
            break
        seen.add(current.span_id)
        current = by_id[current.parent_id]
    return current.span_id


def to_chrome_trace(collector: SpanCollector, *, pid: int = 1) -> dict:
    """Chrome trace-event JSON (the ``traceEvents`` envelope).

    Every span becomes one complete event (``ph="X"``); span point
    events become instant events (``ph="i"``) on the same track.  Track
    ids group spans under their root, so one request's tree renders as
    one lane.
    """
    spans = collector.spans()
    by_id = {span.span_id: span for span in spans}
    events = []
    for span in spans:
        tid = _root_of(span, by_id)
        start_us = span.start * _US
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": start_us,
                "dur": max((end - span.start) * _US, 0.0),
                "pid": pid,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": f"{span.name}.{event.name}",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": event.time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    collector: SpanCollector, path: str | Path, *, pid: int = 1
) -> Path:
    """Write a Perfetto-loadable trace JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(collector, pid=pid), sort_keys=True)
    )
    return path


def write_trace(collector: SpanCollector, path: str | Path) -> Path:
    """Write by extension: ``.jsonl`` -> JSONL, anything else -> Chrome.

    The dispatch behind every ``--trace PATH`` CLI flag.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(collector, path)
    return write_chrome_trace(collector, path)
