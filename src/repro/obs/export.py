"""Trace export: JSONL span dumps and Chrome trace-event (Perfetto) files.

Two serialized forms of one :class:`~repro.obs.trace.SpanCollector`:

* :func:`to_jsonl` — one JSON object per span, sorted by span id, with
  sorted keys and fixed separators.  Under a simulated clock this dump
  is **byte-for-byte reproducible** across reruns of the same seed
  (the ``repro trace`` determinism gate).
* :func:`to_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / https://ui.perfetto.dev): complete ``"X"``
  events with microsecond timestamps, span attributes and events in
  ``args``.  Parent nesting is conveyed by time containment per track;
  spans map to tracks (``tid``) by their root span so concurrent
  requests render as parallel lanes.

File writers are atomic: the dump lands in a temp file in the target's
directory and is renamed into place, so an interrupted run never leaves
a truncated ``--trace`` artifact (``os.replace`` is atomic on POSIX).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.obs.trace import Span, SpanCollector

#: Seconds -> microseconds (the trace-event timestamp unit).
_US = 1e6


def span_line(span: Span) -> str:
    """The canonical JSON line of one span (sorted keys, no spaces).

    Shared by the batch dump and the streaming writer, so a streamed
    file and an in-memory ``to_jsonl`` dump agree byte-for-byte on
    every span they both contain.
    """
    return json.dumps(span.as_dict(), sort_keys=True, separators=(",", ":"))


def span_lines(collector: SpanCollector) -> list[str]:
    """One canonical JSON line per span, in span-id order."""
    return [span_line(span) for span in collector.spans()]


def to_jsonl(collector: SpanCollector) -> str:
    """The JSONL dump (trailing newline; empty string for no spans)."""
    lines = span_lines(collector)
    return "\n".join(lines) + ("\n" if lines else "")


def _atomic_write_text(path: str | Path, text: str) -> None:
    """Write via a same-directory temp file + rename (all-or-nothing)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed/removed
            pass
        raise


def write_jsonl(collector: SpanCollector, path: str | Path) -> Path:
    """Atomically write the JSONL dump; returns the path."""
    path = Path(path)
    _atomic_write_text(path, to_jsonl(collector))
    return path


def _root_of(span: Span, by_id: dict[int, Span]) -> int:
    """The root ancestor's span id (cycle-safe: falls back to self).

    A span whose parent is missing from ``by_id`` (an orphan — its
    parent was sampled away or never collected) anchors its own track.
    """
    seen = set()
    current = span
    while current.parent_id is not None and current.parent_id in by_id:
        if current.span_id in seen:  # pragma: no cover - defensive
            break
        seen.add(current.span_id)
        current = by_id[current.parent_id]
    return current.span_id


def to_chrome_trace(collector: SpanCollector, *, pid: int = 1) -> dict:
    """Chrome trace-event JSON (the ``traceEvents`` envelope).

    Every span becomes one complete event (``ph="X"``); span point
    events become instant events (``ph="i"``) on the same track.  Track
    ids group spans under their root, so one request's tree renders as
    one lane.  A span that never ended renders zero-duration and is
    flagged ``"incomplete": true`` in ``args`` rather than passing
    silently as an instant operation.
    """
    spans = collector.spans()
    by_id = {span.span_id: span for span in spans}
    events = []
    for span in spans:
        tid = _root_of(span, by_id)
        start_us = span.start * _US
        end = span.end if span.end is not None else span.start
        args = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            **span.attrs,
        }
        if span.end is None:
            args["incomplete"] = True
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": start_us,
                "dur": max((end - span.start) * _US, 0.0),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": f"{span.name}.{event.name}",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": event.time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(event.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    collector: SpanCollector, path: str | Path, *, pid: int = 1
) -> Path:
    """Atomically write a Perfetto-loadable trace JSON; returns the path."""
    path = Path(path)
    _atomic_write_text(
        path, json.dumps(to_chrome_trace(collector, pid=pid), sort_keys=True)
    )
    return path


def write_trace(collector: SpanCollector, path: str | Path) -> Path:
    """Write by extension: ``.jsonl`` -> JSONL, ``.json`` (and anything
    else) -> Chrome trace-event JSON.

    The dispatch behind every ``--trace PATH`` CLI flag.  ``.json`` is
    dispatched explicitly — it is the documented Perfetto extension,
    not a fallback; unknown extensions also get the Chrome form so a
    bare ``trace.out`` stays loadable.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(collector, path)
    if path.suffix == ".json":
        return write_chrome_trace(collector, path)
    return write_chrome_trace(collector, path)
