"""repro.obs: deterministic tracing + the unified telemetry registry.

The observability subsystem of the serving stack:

* :mod:`repro.obs.trace` — clock-injected :class:`Tracer` emitting
  nested :class:`Span` trees (request lifecycle, iterations, shards,
  hot-path stages) into a :class:`SpanCollector`; the
  :data:`NULL_TRACER` default keeps every instrumented path at its
  pre-tracing behaviour.
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`
  (counters/gauges/histograms with labels) with JSON snapshot and
  Prometheus text exposition; the substrate under
  :class:`~repro.serving.metrics.Metrics` and
  :class:`~repro.cluster.metrics.ClusterMetrics`.
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto)
  writers; byte-stable under a simulated clock.
* :mod:`repro.obs.demo` — the small noisy traced workload behind
  ``repro trace`` and ``benchmarks/bench_obs.py`` (imported lazily to
  keep this package import-light).
"""

from repro.obs.export import (
    span_lines,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanCollector,
    SpanEvent,
    Tracer,
    current_span,
    current_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanCollector",
    "SpanEvent",
    "Tracer",
    "current_span",
    "current_tracer",
    "span_lines",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
