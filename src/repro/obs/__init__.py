"""repro.obs: deterministic tracing + the unified telemetry registry.

The observability subsystem of the serving stack:

* :mod:`repro.obs.trace` — clock-injected :class:`Tracer` emitting
  nested :class:`Span` trees (request lifecycle, iterations, shards,
  hot-path stages) into a :class:`SpanCollector`; the
  :data:`NULL_TRACER` default keeps every instrumented path at its
  pre-tracing behaviour.
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`
  (counters/gauges/histograms with labels) with JSON snapshot and
  Prometheus text exposition; the substrate under
  :class:`~repro.serving.metrics.Metrics` and
  :class:`~repro.cluster.metrics.ClusterMetrics`.
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto)
  writers; byte-stable under a simulated clock, atomic on disk.
* :mod:`repro.obs.stream` — :class:`StreamingSpanWriter` (bounded-memory
  JSONL export at span end) with deterministic head-based
  :class:`TraceSampler` policies that always keep incident spans.
* :mod:`repro.obs.recorder` — :class:`FlightRecorder`: a fixed-size
  ring of recent spans/events that freezes postmortem bundles when a
  replica fails, a session dooms, or a :class:`ServingError` fires.
* :mod:`repro.obs.timeseries` — :class:`TimeSeriesRecorder` (cadenced
  registry snapshots, windowed rates/percentiles) under an
  :class:`SLOMonitor` evaluating multi-window burn rates into a
  deterministic alert ledger.
* :mod:`repro.obs.live` — the ``repro top`` fleet table renderer and
  one-shot Prometheus HTTP exposition behind ``repro metrics``.
* :mod:`repro.obs.demo` — the small noisy traced workload behind
  ``repro trace`` and ``benchmarks/bench_obs.py`` (imported lazily to
  keep this package import-light).
"""

from repro.obs.export import (
    span_line,
    span_lines,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.live import FleetTop, MetricsExposition, render_fleet_table
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stream import (
    FanoutSink,
    StreamingSpanWriter,
    TraceSampler,
    is_incident,
    sampled_lines,
)
from repro.obs.timeseries import (
    Alert,
    BurnWindow,
    SLObjective,
    SLOMonitor,
    TimeSeriesRecorder,
    error_rate_objective,
    latency_objective,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanCollector,
    SpanEvent,
    Tracer,
    current_span,
    current_tracer,
)

__all__ = [
    "Alert",
    "BurnWindow",
    "Counter",
    "FanoutSink",
    "FleetTop",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsExposition",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "SLObjective",
    "SLOMonitor",
    "Span",
    "SpanCollector",
    "SpanEvent",
    "StreamingSpanWriter",
    "TimeSeriesRecorder",
    "TraceSampler",
    "Tracer",
    "current_span",
    "current_tracer",
    "error_rate_objective",
    "is_incident",
    "latency_objective",
    "render_fleet_table",
    "sampled_lines",
    "span_line",
    "span_lines",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
