"""Lightening-Transformer reproduction (HPCA 2024).

A from-scratch Python implementation of the dynamically-operated,
optically-interconnected photonic Transformer accelerator: photonic
tensor-core models (:mod:`repro.core`), the field-level optics substrate
(:mod:`repro.optics`), the accelerator behavioural simulator
(:mod:`repro.arch`), photonic and electronic baselines
(:mod:`repro.baselines`), transformer workload models
(:mod:`repro.workloads`), and the noise-aware neural-network stack
(:mod:`repro.neural`).
"""

from repro.core import (
    DDot,
    DPTC,
    DPTCGeometry,
    EncodingNoise,
    NoiseModel,
    SystematicNoise,
)

__version__ = "1.0.0"

__all__ = [
    "DDot",
    "DPTC",
    "DPTCGeometry",
    "EncodingNoise",
    "NoiseModel",
    "SystematicNoise",
    "__version__",
]
