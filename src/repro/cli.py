"""Command-line interface to the accelerator models.

Usage::

    python -m repro.cli area   [--config lt-b|lt-l] [--bits N]
    python -m repro.cli power  [--config lt-b|lt-l] [--bits N]
    python -m repro.cli run    [--config lt-b|lt-l] [--bits N] [--model NAME]
    python -m repro.cli compare [--bits N] [--model NAME]
    python -m repro.cli report [--skip-accuracy]

Models: deit-t, deit-s, deit-b, bert-base, bert-large.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis.tables import render_table
from repro.arch import (
    AcceleratorConfig,
    LighteningTransformer,
    area_breakdown,
    lt_base,
    lt_large,
    power_breakdown,
)
from repro.baselines import MRRAccelerator, MZIAccelerator, all_platforms
from repro.units import MJ, MM2, MS
from repro.workloads import (
    TransformerConfig,
    bert_base,
    bert_large,
    deit_base,
    deit_small,
    deit_tiny,
    gemm_trace,
)

CONFIGS: dict[str, Callable[[int], AcceleratorConfig]] = {
    "lt-b": lt_base,
    "lt-l": lt_large,
}

MODELS: dict[str, Callable[[], TransformerConfig]] = {
    "deit-t": deit_tiny,
    "deit-s": deit_small,
    "deit-b": deit_base,
    "bert-base": bert_base,
    "bert-large": bert_large,
}


def _resolve_config(args: argparse.Namespace) -> AcceleratorConfig:
    return CONFIGS[args.config](args.bits)


def cmd_area(args: argparse.Namespace) -> int:
    breakdown = area_breakdown(_resolve_config(args))
    rows = [
        {"category": cat, "area_mm2": area / MM2, "share_pct": 100 * breakdown.fraction(cat)}
        for cat, area in breakdown.by_category.items()
    ]
    rows.append({"category": "TOTAL", "area_mm2": breakdown.total_mm2, "share_pct": 100.0})
    print(render_table(rows, title=f"Area breakdown: {args.config} @ {args.bits}-bit"))
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    breakdown = power_breakdown(_resolve_config(args))
    rows = [
        {"category": cat, "power_w": power, "share_pct": 100 * breakdown.fraction(cat)}
        for cat, power in breakdown.by_category.items()
    ]
    rows.append({"category": "TOTAL", "power_w": breakdown.total, "share_pct": 100.0})
    print(render_table(rows, title=f"Power breakdown: {args.config} @ {args.bits}-bit"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    accelerator = LighteningTransformer(_resolve_config(args))
    model = MODELS[args.model]()
    result = accelerator.run(model)
    print(
        render_table(
            [
                {
                    "workload": model.name,
                    "energy_mJ": result.energy_joules / MJ,
                    "latency_ms": result.latency / MS,
                    "fps": result.fps,
                    "edp_mJ_ms": result.edp / (MJ * MS),
                    "cycles": result.cycles,
                }
            ],
            title=f"{args.config} @ {args.bits}-bit",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    model = MODELS[args.model]()
    trace = gemm_trace(model)
    lt = LighteningTransformer(lt_base(args.bits)).run(trace)
    rows = [
        {
            "design": "LT-B",
            "energy_mJ": lt.energy_joules / MJ,
            "latency_ms": lt.latency / MS,
            "vs_lt_energy": 1.0,
            "vs_lt_latency": 1.0,
        }
    ]
    for name, accelerator in (
        ("MRR bank", MRRAccelerator(bits=args.bits)),
        ("MZI array", MZIAccelerator(bits=args.bits)),
    ):
        run = accelerator.run(trace)
        rows.append(
            {
                "design": name,
                "energy_mJ": run.energy_joules / MJ,
                "latency_ms": run.latency / MS,
                "vs_lt_energy": run.energy_joules / lt.energy_joules,
                "vs_lt_latency": run.latency / lt.latency,
            }
        )
    for platform in all_platforms():
        rows.append(
            {
                "design": platform.name,
                "energy_mJ": platform.energy(trace) / MJ,
                "latency_ms": platform.latency(trace) / MS,
                "vs_lt_energy": platform.energy(trace) / lt.energy_joules,
                "vs_lt_latency": platform.latency(trace) / lt.latency,
            }
        )
    print(render_table(rows, title=f"{model.name} @ {args.bits}-bit"))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.scorecard import run_scorecard

    results = run_scorecard()
    print(
        render_table(
            [result.as_row() for result in results],
            title="Reproduction scorecard (paper vs measured)",
        )
    )
    failing = [result for result in results if not result.passed]
    if failing:
        print(f"{len(failing)} claim(s) FAILED")
        return 1
    print(f"all {len(results)} claims hold")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import generate

    generate(Path(args.output), skip_accuracy=args.skip_accuracy)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Lightening-Transformer accelerator models"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", choices=sorted(CONFIGS), default="lt-b")
        p.add_argument("--bits", type=int, default=4, choices=(4, 8))

    p_area = sub.add_parser("area", help="chip area breakdown (Fig. 7)")
    common(p_area)
    p_area.set_defaults(func=cmd_area)

    p_power = sub.add_parser("power", help="chip power breakdown (Fig. 8)")
    common(p_power)
    p_power.set_defaults(func=cmd_power)

    p_run = sub.add_parser("run", help="energy/latency of a workload (Table V)")
    common(p_run)
    p_run.add_argument("--model", choices=sorted(MODELS), default="deit-t")
    p_run.set_defaults(func=cmd_run)

    p_compare = sub.add_parser(
        "compare", help="compare against baselines (Table V / Fig. 13)"
    )
    p_compare.add_argument("--bits", type=int, default=4, choices=(4, 8))
    p_compare.add_argument("--model", choices=sorted(MODELS), default="deit-t")
    p_compare.set_defaults(func=cmd_compare)

    p_verify = sub.add_parser(
        "verify", help="check every headline claim against the paper"
    )
    p_verify.set_defaults(func=cmd_verify)

    p_report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_report.add_argument("--output", default="EXPERIMENTS.md")
    p_report.add_argument("--skip-accuracy", action="store_true")
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
