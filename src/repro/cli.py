"""Command-line interface to the accelerator models.

Usage::

    python -m repro.cli area   [--config lt-b|lt-l] [--bits N]
    python -m repro.cli power  [--config lt-b|lt-l] [--bits N]
    python -m repro.cli run    [--config lt-b|lt-l] [--bits N] [--model NAME]
    python -m repro.cli compare [--bits N] [--model NAME]
    python -m repro.cli report [--skip-accuracy]
    python -m repro.cli serve-bench [--model tiny-vit|tiny-bert] [--requests N]
    python -m repro.cli cluster-bench [--replicas N] [--policy NAME] [--autoscale]
    python -m repro.cli hotpath-bench [--batch N] [--chunk-size C] [--out FILE]
    python -m repro.cli trace  [--seed N] [--requests N] [--out FILE]
                               [--sample RATE] [--stream]
    python -m repro.cli top    [--replicas N] [--frames N] [--fail-replica ID]
    python -m repro.cli metrics [--requests N] [--port P]

``trace`` runs the deterministic demo workload from
:mod:`repro.obs.demo` and dumps the span tree (JSONL by default; a
``--out`` ending in anything but ``.jsonl`` writes Chrome trace-event
JSON for Perfetto).  ``--sample RATE`` keeps one in RATE traces
(incident spans always survive) and ``--stream`` exports each span the
moment it ends instead of holding the run in memory — both produce
deterministic subsets of the full dump.  ``top`` renders live ANSI
fleet-dashboard frames over a demo cluster (optionally failing a
replica mid-run, which drops a flight-recorder postmortem), and
``metrics`` prints the demo registry in Prometheus text format (with
``--port``, serves exactly one HTTP scrape of it).  The bench verbs
take ``--trace PATH`` to capture the same span tree for a real
benchmark run.

The serving verbs construct from the unified config objects
(:class:`~repro.serving.config.EngineConfig` /
:class:`~repro.cluster.config.ClusterConfig`): ``--config`` takes the
config as inline JSON or a path to a JSON file, and the per-field flags
(``--max-batch-size``, ``--scheduler``, ...) override individual
fields on top.

Models: deit-t, deit-s, deit-b, bert-base, bert-large.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis.tables import render_table
from repro.arch import (
    AcceleratorConfig,
    LighteningTransformer,
    area_breakdown,
    lt_base,
    lt_large,
    power_breakdown,
)
from repro.baselines import MRRAccelerator, MZIAccelerator, all_platforms
from repro.units import MJ, MM2, MS
from repro.workloads import (
    TransformerConfig,
    bert_base,
    bert_large,
    deit_base,
    deit_small,
    deit_tiny,
    gemm_trace,
)

CONFIGS: dict[str, Callable[[int], AcceleratorConfig]] = {
    "lt-b": lt_base,
    "lt-l": lt_large,
}

MODELS: dict[str, Callable[[], TransformerConfig]] = {
    "deit-t": deit_tiny,
    "deit-s": deit_small,
    "deit-b": deit_base,
    "bert-base": bert_base,
    "bert-large": bert_large,
}


def _resolve_config(args: argparse.Namespace) -> AcceleratorConfig:
    return CONFIGS[args.config](args.bits)


def cmd_area(args: argparse.Namespace) -> int:
    breakdown = area_breakdown(_resolve_config(args))
    rows = [
        {"category": cat, "area_mm2": area / MM2, "share_pct": 100 * breakdown.fraction(cat)}
        for cat, area in breakdown.by_category.items()
    ]
    rows.append({"category": "TOTAL", "area_mm2": breakdown.total_mm2, "share_pct": 100.0})
    print(render_table(rows, title=f"Area breakdown: {args.config} @ {args.bits}-bit"))
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    breakdown = power_breakdown(_resolve_config(args))
    rows = [
        {"category": cat, "power_w": power, "share_pct": 100 * breakdown.fraction(cat)}
        for cat, power in breakdown.by_category.items()
    ]
    rows.append({"category": "TOTAL", "power_w": breakdown.total, "share_pct": 100.0})
    print(render_table(rows, title=f"Power breakdown: {args.config} @ {args.bits}-bit"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    accelerator = LighteningTransformer(_resolve_config(args))
    model = MODELS[args.model]()
    result = accelerator.run(model)
    print(
        render_table(
            [
                {
                    "workload": model.name,
                    "energy_mJ": result.energy_joules / MJ,
                    "latency_ms": result.latency / MS,
                    "fps": result.fps,
                    "edp_mJ_ms": result.edp / (MJ * MS),
                    "cycles": result.cycles,
                }
            ],
            title=f"{args.config} @ {args.bits}-bit",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    model = MODELS[args.model]()
    trace = gemm_trace(model)
    lt = LighteningTransformer(lt_base(args.bits)).run(trace)
    rows = [
        {
            "design": "LT-B",
            "energy_mJ": lt.energy_joules / MJ,
            "latency_ms": lt.latency / MS,
            "vs_lt_energy": 1.0,
            "vs_lt_latency": 1.0,
        }
    ]
    for name, accelerator in (
        ("MRR bank", MRRAccelerator(bits=args.bits)),
        ("MZI array", MZIAccelerator(bits=args.bits)),
    ):
        run = accelerator.run(trace)
        rows.append(
            {
                "design": name,
                "energy_mJ": run.energy_joules / MJ,
                "latency_ms": run.latency / MS,
                "vs_lt_energy": run.energy_joules / lt.energy_joules,
                "vs_lt_latency": run.latency / lt.latency,
            }
        )
    for platform in all_platforms():
        rows.append(
            {
                "design": platform.name,
                "energy_mJ": platform.energy(trace) / MJ,
                "latency_ms": platform.latency(trace) / MS,
                "vs_lt_energy": platform.energy(trace) / lt.energy_joules,
                "vs_lt_latency": platform.latency(trace) / lt.latency,
            }
        )
    print(render_table(rows, title=f"{model.name} @ {args.bits}-bit"))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.scorecard import run_scorecard

    results = run_scorecard()
    print(
        render_table(
            [result.as_row() for result in results],
            title="Reproduction scorecard (paper vs measured)",
        )
    )
    failing = [result for result in results if not result.passed]
    if failing:
        print(f"{len(failing)} claim(s) FAILED")
        return 1
    print(f"all {len(results)} claims hold")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Deterministic demo trace: run the obs workload, dump the spans."""
    from repro.obs import (
        StreamingSpanWriter,
        TraceSampler,
        sampled_lines,
        to_jsonl,
        write_trace,
    )
    from repro.obs.demo import run_trace_workload, run_workload

    if args.requests < 1:
        raise SystemExit("trace: --requests must be >= 1")
    try:
        sampler = TraceSampler(args.sample) if args.sample is not None else None
    except ValueError as error:
        raise SystemExit(f"trace: {error}")
    if args.stream:
        if not args.out:
            raise SystemExit("trace: --stream needs --out FILE")
        if not args.out.endswith(".jsonl"):
            raise SystemExit("trace: --stream writes JSONL; --out must end in .jsonl")
        # Spans hit disk at span end instead of accumulating in memory;
        # the workload (and therefore every span id/timestamp) is the
        # batch path's, so the file sorts into the same canonical lines.
        with StreamingSpanWriter(args.out, sampler=sampler) as writer:
            run_workload(
                seed=args.seed,
                requests=args.requests,
                max_batch_size=args.max_batch_size,
                sink=writer,
            )
        print(
            f"streamed {writer.spans_written}/{writer.spans_seen} spans "
            f"-> {args.out} (peak {writer.peak_open} open)"
        )
        return 0
    collector = run_trace_workload(
        seed=args.seed,
        requests=args.requests,
        max_batch_size=args.max_batch_size,
    )
    if sampler is not None:
        if args.out and not args.out.endswith(".jsonl"):
            raise SystemExit(
                "trace: --sample writes JSONL; --out must end in .jsonl"
            )
        lines = sampled_lines(collector, sampler)
        text = "\n".join(lines) + ("\n" if lines else "")
        if args.out:
            from repro.obs.export import _atomic_write_text

            _atomic_write_text(args.out, text)
            print(
                f"wrote {len(lines)}/{len(collector)} sampled spans -> {args.out}"
            )
        else:
            sys.stdout.write(text)
        return 0
    if args.out:
        path = write_trace(collector, args.out)
        print(f"wrote {len(collector)} spans -> {path}")
    else:
        sys.stdout.write(to_jsonl(collector))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Fleet dashboard frames over a deterministic demo cluster run."""
    import numpy as np

    from repro.cluster import ClusterConfig, ServiceModel, ServingCluster
    from repro.obs import (
        FleetTop,
        FlightRecorder,
        SLOMonitor,
        TimeSeriesRecorder,
        latency_objective,
    )
    from repro.obs.demo import TracedMatmulServable
    from repro.obs.live import ANSI_HOME
    from repro.serving import EngineConfig, SimulatedClock

    if args.replicas < 1:
        raise SystemExit("top: --replicas must be >= 1")
    if args.requests < 1:
        raise SystemExit("top: --requests must be >= 1")
    if args.frames < 1:
        raise SystemExit("top: --frames must be >= 1")
    if args.rate <= 0:
        raise SystemExit("top: --rate must be > 0")
    from repro.obs import Tracer

    clock = SimulatedClock()
    recorder = FlightRecorder(clock=clock)
    # Trace the run and tee span ends into the recorder's ring, so a
    # mid-run failure freezes actual recent spans into the postmortem.
    tracer = Tracer(clock=clock)
    recorder.attach(tracer)
    config = ClusterConfig(
        replicas=args.replicas,
        policy="least_outstanding",
        engine=EngineConfig(
            max_batch_size=4,
            max_wait_us=500.0,
            queue_depth=max(64, args.requests),
        ),
        service_model=ServiceModel(),
    )
    cluster = ServingCluster(
        lambda rid: TracedMatmulServable(seed=args.seed + rid),
        config=config,
        clock=clock,
        tracer=tracer,
        recorder=recorder,
    )
    # The monitor reads the cluster's own registry, so it is built after
    # the cluster and attached; maintain() ticks it on every step.
    monitor = SLOMonitor(
        [
            latency_objective(
                "p95-latency", "cluster_request_latency_seconds", 0.01
            )
        ],
        TimeSeriesRecorder(cluster.metrics.registry, interval_s=0.5e-3),
    )
    cluster.slo_monitor = monitor
    top = FleetTop(cluster, monitor=monitor, color=not args.no_color)
    payload_rng = np.random.default_rng(args.seed + 2)
    gap_rng = np.random.default_rng(args.seed + 3)
    servable = TracedMatmulServable(seed=args.seed)
    frame_every = max(1, args.requests // args.frames)
    fail_at = args.requests // 2 if args.fail_replica is not None else None

    def show() -> None:
        if not args.no_color:
            sys.stdout.write(ANSI_HOME)
        sys.stdout.write(top.frame())

    with cluster:
        for index in range(args.requests):
            clock.advance(float(gap_rng.exponential(1.0 / args.rate)))
            payload = payload_rng.uniform(-1.0, 1.0, (servable.m, servable.d))
            cluster.submit(payload, session_id=f"session-{index % 4}")
            cluster.step(force=False)
            if fail_at is not None and index == fail_at:
                try:
                    cluster.fail_replica(args.fail_replica)
                except KeyError:
                    raise SystemExit(
                        f"top: no replica {args.fail_replica} to fail"
                    )
                fail_at = None
            if (index + 1) % frame_every == 0:
                show()
        cluster.run_until_idle()
        show()
    for bundle in recorder.bundles:
        print(
            f"postmortem: {bundle['reason']} at t={bundle['time'] * 1e3:.3f} ms "
            f"({len(bundle['spans'])} spans, {len(bundle['events'])} events)"
        )
    print(f"{top.frames_rendered} frames rendered")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Prometheus text dump of the demo workload's registry."""
    import numpy as np

    from repro.obs.demo import TracedMatmulServable, trace_workload_config
    from repro.obs.live import MetricsExposition, threaded_fetch
    from repro.serving import ServingEngine, SimulatedClock

    if args.requests < 1:
        raise SystemExit("metrics: --requests must be >= 1")
    servable = TracedMatmulServable(seed=args.seed)
    payload_rng = np.random.default_rng(args.seed + 2)
    engine = ServingEngine(
        servable,
        config=trace_workload_config(args.max_batch_size),
        clock=SimulatedClock(),
        close_executor=True,
    )
    with engine:
        handles = [
            engine.submit(
                payload_rng.uniform(-1.0, 1.0, (servable.m, servable.d)),
                session_id=f"session-{index % 3}",
            )
            for index in range(args.requests)
        ]
        engine.run_until_idle()
        for handle in handles:
            handle.result(timeout=0)
        text = engine.metrics.registry.to_prometheus()
    if args.port is not None:
        exposition = MetricsExposition(lambda: text, port=args.port)
        print(f"serving one scrape at {exposition.url}")
        if args.self_scrape:
            threaded_fetch(exposition.url)
        exposition.serve_once(timeout=args.timeout)
        print("served 1 scrape")
        return 0
    sys.stdout.write(text)
    return 0


def _build_tracer(args: argparse.Namespace):
    """The bench verbs' ``--trace PATH`` tracer (``None`` when off)."""
    if not getattr(args, "trace", None):
        return None
    from repro.obs import Tracer

    return Tracer()


def _dump_tracer(tracer, path: str) -> None:
    from repro.obs import write_trace

    written = write_trace(tracer.collector, path)
    print(f"wrote {len(tracer.collector)} spans -> {written}")


#: Small serving-demo architectures (fast enough for interactive runs).
SERVE_MODELS = ("tiny-vit", "tiny-bert")


def _load_config_data(text: str) -> dict:
    """``--config`` value: inline JSON (starts with ``{``) or a path."""
    import json
    from pathlib import Path

    text = text.strip()
    if text.startswith("{"):
        return json.loads(text)
    return json.loads(Path(text).read_text())


def _engine_overrides(args: argparse.Namespace) -> dict:
    """EngineConfig field overrides from the per-field CLI flags."""
    overrides = {}
    for flag in (
        "max_batch_size",
        "max_wait_us",
        "scheduler",
        "num_cores",
        "chunk_size",
        "pipeline_depth",
        "seed",
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[flag] = value
    return overrides


def _serve_setup(args: argparse.Namespace, engine_config):
    """(servable, payloads) for the serve-bench workload."""
    import numpy as np

    from repro.serving import TextServable, VisionServable
    from repro.workloads.transformer import KIND_TEXT, servable_model

    rng = np.random.default_rng(engine_config.seed)
    if args.model == "tiny-vit":
        config = TransformerConfig(
            "serve-tiny-vit", depth=1, dim=32, heads=2, seq_len=17,
            mlp_ratio=2.0, n_classes=4, patch_size=4, image_size=16,
            in_channels=1,
        )
        model = servable_model(config, engine=engine_config)
        servable = VisionServable(model)
        payloads = [rng.normal(size=(16, 16)) for _ in range(args.requests)]
    else:
        config = TransformerConfig(
            "serve-tiny-bert", depth=1, dim=32, heads=2, seq_len=17,
            mlp_ratio=2.0, kind=KIND_TEXT, n_classes=2,
        )
        model = servable_model(config, engine=engine_config)
        servable = TextServable(model, pad_id=0)
        payloads = [
            rng.integers(1, 32, size=int(rng.integers(1, 17)))
            for _ in range(args.requests)
        ]
    return servable, payloads


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Dynamic-batching serving benchmark (open- and closed-loop load)."""
    import numpy as np

    from repro.serving import (
        EngineConfig,
        ServingEngine,
        poisson_gaps,
        run_closed_loop,
        run_open_loop,
    )

    if args.requests < 1:
        raise SystemExit("serve-bench: --requests must be >= 1")
    if args.rate <= 0:
        raise SystemExit("serve-bench: --rate must be > 0")
    if args.users < 1 or args.rounds < 1:
        raise SystemExit("serve-bench: --users and --rounds must be >= 1")
    base = (
        EngineConfig.from_dict(_load_config_data(args.config))
        if args.config
        else EngineConfig(max_wait_us=2_000.0)
    )
    try:
        engine_config = base.replace(
            queue_depth=max(base.queue_depth, args.requests),
            **_engine_overrides(args),
        )
    except ValueError as error:
        raise SystemExit(f"serve-bench: {error}")
    servable, payloads = _serve_setup(args, engine_config)
    tracer = _build_tracer(args)
    rng = np.random.default_rng(engine_config.seed + 1)
    gaps = poisson_gaps(len(payloads), 1.0 / args.rate, rng)
    rows = []
    with ServingEngine(
        servable, config=engine_config, close_executor=True, tracer=tracer
    ) as engine:
        rows.append(run_open_loop(engine, payloads, gaps))
        users = min(args.users, len(payloads))
        rows.append(run_closed_loop(engine, payloads[:users], rounds=args.rounds))
        occupancy = engine.metrics.batch_occupancy()
        iteration_occupancy = engine.metrics.iteration_occupancy()
    for row in rows:
        row.setdefault("concurrency", "-")
    print(
        render_table(
            rows,
            title=(
                f"serve-bench {args.model}: "
                f"max_batch_size={engine_config.max_batch_size}, "
                f"max_wait_us={engine_config.max_wait_us:g}, "
                f"rate={args.rate:g} req/s, "
                f"scheduler={engine_config.scheduler}"
            ),
        )
    )
    print(
        "batch occupancy: "
        + ", ".join(f"{size}x{count}" for size, count in occupancy.items())
    )
    if iteration_occupancy:
        print(
            "iteration occupancy: "
            + ", ".join(
                f"{size}x{count}" for size, count in iteration_occupancy.items()
            )
        )
    if tracer is not None:
        _dump_tracer(tracer, args.trace)
    return 0


#: Cluster-bench workloads: stateless vision or session-pinned decode.
CLUSTER_MODELS = ("tiny-vit", "decode")


def cmd_cluster_bench(args: argparse.Namespace) -> int:
    """Multi-replica routing/autoscaling demo (simulated clock, no sleeps)."""
    import numpy as np

    from repro.cluster import (
        AutoscalerPolicy,
        ClusterConfig,
        ServiceModel,
        ServingCluster,
        run_virtual_open_loop,
        run_virtual_schedule,
    )
    from repro.serving import (
        EngineConfig,
        SimulatedClock,
        TenantSpec,
        VisionServable,
        multi_tenant_arrivals,
    )
    from repro.workloads.llm import DecoderConfig, decode_servable
    from repro.workloads.transformer import servable_model

    if args.requests < 1:
        raise SystemExit("cluster-bench: --requests must be >= 1")
    if args.rate <= 0:
        raise SystemExit("cluster-bench: --rate must be > 0")

    base = (
        ClusterConfig.from_dict(_load_config_data(args.config))
        if args.config
        else ClusterConfig(
            replicas=3,
            policy="least_outstanding",
            engine=EngineConfig(max_wait_us=500.0),
            service_model=ServiceModel(),
        )
    )
    cluster_overrides = {}
    if args.replicas is not None:
        cluster_overrides["replicas"] = args.replicas
    if args.policy is not None:
        cluster_overrides["policy"] = args.policy
    if args.shared_cache:
        cluster_overrides["shared_cache"] = True
    if args.service_base_us is not None or args.service_per_request_us is not None:
        model = base.service_model if base.service_model is not None else ServiceModel()
        cluster_overrides["service_model"] = ServiceModel(
            base_s=(
                args.service_base_us * 1e-6
                if args.service_base_us is not None
                else model.base_s
            ),
            per_request_s=(
                args.service_per_request_us * 1e-6
                if args.service_per_request_us is not None
                else model.per_request_s
            ),
        )
    try:
        config = base.replace(
            engine=base.engine.replace(
                queue_depth=max(base.engine.queue_depth, args.requests),
                **_engine_overrides(args),
            ),
            **cluster_overrides,
        )
    except ValueError as error:
        raise SystemExit(f"cluster-bench: {error}")

    seed = config.engine.seed
    if args.model == "tiny-vit":
        model_config = TransformerConfig(
            "cluster-tiny-vit", depth=1, dim=32, heads=2, seq_len=17,
            mlp_ratio=2.0, n_classes=4, patch_size=4, image_size=16,
            in_channels=1,
        )

        def factory(replica_id: int):
            model = servable_model(model_config, engine=config.engine)
            return VisionServable(model)
    else:
        decoder = DecoderConfig(
            "cluster-decode", depth=2, dim=16, heads=2, mlp_ratio=2.0
        )

        def factory(replica_id: int):
            return decode_servable(decoder, engine=config.engine)

    autoscaler = (
        AutoscalerPolicy(
            min_replicas=1,
            max_replicas=config.replicas,
            high_backlog=50.0,
            low_backlog=0.5,
            latency_slo_s=args.slo_ms * 1e-3,
            cooldown_s=0.5e-3,
        )
        if args.autoscale
        else None
    )
    target_replicas = config.replicas
    if args.autoscale:
        config = config.replace(replicas=1)
    tracer = _build_tracer(args)
    cluster = ServingCluster(
        factory,
        config=config,
        clock=SimulatedClock(),
        autoscaler=autoscaler,
        tracer=tracer,
    )
    rng = np.random.default_rng(seed + 1)
    with cluster:
        if args.model == "tiny-vit":
            payloads = [rng.normal(size=(16, 16)) for _ in range(args.requests)]
            gaps = rng.exponential(1.0 / args.rate, size=args.requests)
            report = run_virtual_open_loop(cluster, payloads, gaps)
        else:
            tenants = (
                TenantSpec("chat-a", rate_rps=2 * args.rate / 3, sessions=4),
                TenantSpec("chat-b", rate_rps=args.rate / 3, sessions=3),
            )
            arrivals = multi_tenant_arrivals(
                tenants, horizon_s=args.requests / args.rate, rng=rng
            )
            report = run_virtual_schedule(
                cluster,
                arrivals,
                lambda arrival: np.random.default_rng(arrival.index).normal(size=16),
            )
        report.pop("handles")
        snapshot = cluster.snapshot()
    print(
        render_table(
            [report],
            title=(
                f"cluster-bench {args.model}: policy={config.policy}, "
                f"replicas={target_replicas}"
                f"{' (autoscaled)' if args.autoscale else ''}, "
                f"rate={args.rate:g} req/s (virtual time), "
                f"scheduler={config.engine.scheduler}"
                f"{', shared cache' if config.shared_cache else ''}"
            ),
        )
    )
    print(
        "dispatches: "
        + ", ".join(
            f"replica-{rid}x{count}"
            for rid, count in snapshot["dispatches"].items()
        )
    )
    if args.model == "decode":
        affinity = snapshot["affinity"]
        print(
            f"affinity: hit rate {affinity['hit_rate']:.3f} "
            f"({affinity['hits']} hits / {affinity['misses']} misses), "
            f"{snapshot['migrations']['count']} KV migrations "
            f"({snapshot['migrations']['bytes']} bytes)"
        )
    if "tier" in snapshot:
        tier = snapshot["tier"]
        print(
            f"tier: {tier['hits']} memo hits / {tier['misses']} misses, "
            f"{tier['prefixes']} prefix chains "
            f"({tier['shared_bytes']} shared bytes)"
        )
    for event in snapshot["events"]:
        print(
            f"event t={event['time'] * 1e3:8.3f} ms  {event['kind']:14s} "
            f"replica-{event['replica_id']} (fleet {event['fleet_size']}): "
            f"{event['reason']}"
        )
    if tracer is not None:
        _dump_tracer(tracer, args.trace)
    return 0


def cmd_hotpath_bench(args: argparse.Namespace) -> int:
    """Engine hot-path profile: per-stage timings + pipelined throughput.

    Also asserts the invariant that makes pipelining safe: pipelined
    execution is bit-identical to the sequential chunk schedule for
    equal seeds (same draws, same order, reordered only in wall-clock).
    """
    import json
    import time
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    from repro.core.dptc import DPTC
    from repro.core.hotpath import pipelined_matmul, profile_stages
    from repro.core.noise import NoiseModel

    if min(args.batch, args.m, args.d, args.n) < 1:
        raise SystemExit("hotpath-bench: --batch/--m/--d/--n must be >= 1")
    if args.repeats < 1:
        raise SystemExit("hotpath-bench: --repeats must be >= 1")
    chunk = args.chunk_size if args.chunk_size is not None else max(1, args.batch // 4)
    depth = args.pipeline_depth if args.pipeline_depth is not None else 1
    core = (
        DPTC() if args.noise == "off" else DPTC(noise=NoiseModel.paper_default())
    )
    tracer = _build_tracer(args)
    rng = np.random.default_rng(args.seed)
    a = rng.uniform(-1.0, 1.0, (args.batch, args.m, args.d))
    b = rng.uniform(-1.0, 1.0, (args.batch, args.d, args.n))

    stages = profile_stages(core, a, b, seed=args.seed, repeats=args.repeats)
    sequential = pipelined_matmul(
        core, a, b, np.random.default_rng(args.seed),
        chunk_size=chunk, pipeline_depth=0,
    )
    with ThreadPoolExecutor(max_workers=1) as prefetch:
        if tracer is None:
            pipelined = pipelined_matmul(
                core, a, b, np.random.default_rng(args.seed),
                chunk_size=chunk, pipeline_depth=depth, prefetch=prefetch,
            )
        else:
            # Trace only the correctness-check run: the timing loops
            # below stay untraced so the reported numbers are clean.
            with tracer.activate():
                pipelined = pipelined_matmul(
                    core, a, b, np.random.default_rng(args.seed),
                    chunk_size=chunk, pipeline_depth=depth, prefetch=prefetch,
                )
        if not np.array_equal(sequential, pipelined):
            raise SystemExit(
                "hotpath-bench: pipelined result differs from sequential"
            )

        def best_of(fn) -> float:
            samples = []
            for _ in range(args.repeats):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
            return min(samples)

        seq_s = best_of(
            lambda: pipelined_matmul(
                core, a, b, np.random.default_rng(args.seed),
                chunk_size=chunk, pipeline_depth=0,
            )
        )
        pipe_s = best_of(
            lambda: pipelined_matmul(
                core, a, b, np.random.default_rng(args.seed),
                chunk_size=chunk, pipeline_depth=depth, prefetch=prefetch,
            )
        )
    flop = 2.0 * args.batch * args.m * args.d * args.n
    report = {
        "shape": {"batch": args.batch, "m": args.m, "d": args.d, "n": args.n},
        "chunk_size": chunk,
        "pipeline_depth": depth,
        "noise": args.noise,
        "stage_seconds": stages,
        "sequential_seconds": seq_s,
        "pipelined_seconds": pipe_s,
        "pipelined_speedup": seq_s / pipe_s,
        "throughput_gflops": flop / stages["total"] / 1e9,
        "bit_identical": True,
    }
    rows = [
        {"stage": name, "best_us": stages[name] * 1e6,
         "share_pct": 100.0 * stages[name] / stages["total"]}
        for name in ("sample", "encode", "compute", "detect")
        if name in stages
    ]
    rows.append({"stage": "total", "best_us": stages["total"] * 1e6, "share_pct": 100.0})
    print(
        render_table(
            rows,
            title=(
                f"hotpath-bench [{args.batch}x{args.m}x{args.d}]x"
                f"[{args.batch}x{args.d}x{args.n}], chunk={chunk}, "
                f"depth={depth}, noise={args.noise}"
            ),
        )
    )
    print(
        f"matmul throughput: {report['throughput_gflops']:.3f} GFLOP/s; "
        f"pipelined {pipe_s * 1e6:.1f} us vs sequential {seq_s * 1e6:.1f} us "
        f"({report['pipelined_speedup']:.2f}x); bit-identical: yes"
    )
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    if tracer is not None:
        _dump_tracer(tracer, args.trace)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import generate

    generate(Path(args.output), skip_accuracy=args.skip_accuracy)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Lightening-Transformer accelerator models"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", choices=sorted(CONFIGS), default="lt-b")
        p.add_argument("--bits", type=int, default=4, choices=(4, 8))

    p_area = sub.add_parser("area", help="chip area breakdown (Fig. 7)")
    common(p_area)
    p_area.set_defaults(func=cmd_area)

    p_power = sub.add_parser("power", help="chip power breakdown (Fig. 8)")
    common(p_power)
    p_power.set_defaults(func=cmd_power)

    p_run = sub.add_parser("run", help="energy/latency of a workload (Table V)")
    common(p_run)
    p_run.add_argument("--model", choices=sorted(MODELS), default="deit-t")
    p_run.set_defaults(func=cmd_run)

    p_compare = sub.add_parser(
        "compare", help="compare against baselines (Table V / Fig. 13)"
    )
    p_compare.add_argument("--bits", type=int, default=4, choices=(4, 8))
    p_compare.add_argument("--model", choices=sorted(MODELS), default="deit-t")
    p_compare.set_defaults(func=cmd_compare)

    p_verify = sub.add_parser(
        "verify", help="check every headline claim against the paper"
    )
    p_verify.set_defaults(func=cmd_verify)

    def serving_config_flags(
        p: argparse.ArgumentParser, kind: str, wait_default: float
    ) -> None:
        """The shared config surface of the serving verbs.

        Every flag defaults to None: resolution order is explicit flag >
        ``--config`` JSON > the verb's built-in default.
        """
        p.add_argument(
            "--config", metavar="JSON",
            help=f"{kind} as inline JSON or a path to a JSON file; "
            "the flags below override individual fields",
        )
        p.add_argument(
            "--max-batch-size", type=int, default=None, help="(default 8)"
        )
        p.add_argument(
            "--max-wait-us", type=float, default=None,
            help=f"(default {wait_default:g})",
        )
        p.add_argument(
            "--scheduler",
            choices=("request", "continuous"),
            default=None,
            help="batch composition: request-level or iteration-level "
            "(default request)",
        )
        p.add_argument(
            "--chunk-size", type=int, default=None,
            help="hot-path pipelining chunk along the batch axis "
            "(default: no chunking)",
        )
        p.add_argument(
            "--pipeline-depth", type=int, default=None,
            help="chunks the prefetch stage may run ahead (default 1)",
        )
        p.add_argument("--seed", type=int, default=None, help="(default 0)")
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="capture a span trace of the run (.jsonl for JSON lines, "
            "anything else for Chrome trace-event JSON)",
        )

    p_serve = sub.add_parser(
        "serve-bench",
        help="dynamic-batching serving benchmark (open/closed-loop load)",
    )
    p_serve.add_argument("--model", choices=SERVE_MODELS, default="tiny-vit")
    p_serve.add_argument("--requests", type=int, default=32)
    serving_config_flags(p_serve, "EngineConfig", 2_000.0)
    p_serve.add_argument(
        "--rate", type=float, default=2_000.0, help="open-loop arrival rate (req/s)"
    )
    p_serve.add_argument("--users", type=int, default=4, help="closed-loop users")
    p_serve.add_argument("--rounds", type=int, default=2, help="closed-loop rounds")
    p_serve.add_argument("--num-cores", type=int, default=None, help="(default 1)")
    p_serve.set_defaults(func=cmd_serve_bench)

    p_cluster = sub.add_parser(
        "cluster-bench",
        help="multi-replica routing/autoscaling benchmark (virtual time)",
    )
    p_cluster.add_argument("--model", choices=CLUSTER_MODELS, default="tiny-vit")
    p_cluster.add_argument("--replicas", type=int, default=None, help="(default 3)")
    p_cluster.add_argument(
        "--policy",
        choices=(
            "round_robin", "least_outstanding", "session_affinity",
            "cache_aware",
        ),
        default=None,
        help="(default least_outstanding)",
    )
    p_cluster.add_argument("--requests", type=int, default=48)
    serving_config_flags(p_cluster, "ClusterConfig", 500.0)
    p_cluster.add_argument(
        "--rate", type=float, default=8_000.0,
        help="open-loop arrival rate (req/s, virtual time)",
    )
    p_cluster.add_argument(
        "--service-base-us", type=float, default=None,
        help="virtual per-batch base service time (default 1000)",
    )
    p_cluster.add_argument(
        "--service-per-request-us", type=float, default=None,
        help="virtual incremental service time per batched request "
        "(default 250)",
    )
    p_cluster.add_argument(
        "--shared-cache", action="store_true",
        help="build the fleet-wide shared cache tier "
        "(prompt memo + prefix chains)",
    )
    p_cluster.add_argument(
        "--autoscale", action="store_true",
        help="start at 1 replica and let the SLO autoscaler grow to --replicas",
    )
    p_cluster.add_argument(
        "--slo-ms", type=float, default=2.0,
        help="p95 latency SLO for --autoscale (milliseconds)",
    )
    p_cluster.set_defaults(func=cmd_cluster_bench)

    p_hotpath = sub.add_parser(
        "hotpath-bench",
        help="engine hot-path profile (per-stage timings, pipelined speedup)",
    )
    p_hotpath.add_argument("--batch", type=int, default=64)
    p_hotpath.add_argument("--m", type=int, default=24)
    p_hotpath.add_argument("--d", type=int, default=32)
    p_hotpath.add_argument("--n", type=int, default=24)
    p_hotpath.add_argument(
        "--chunk-size", type=int, default=None,
        help="stacks per pipeline chunk (default batch/4)",
    )
    p_hotpath.add_argument(
        "--pipeline-depth", type=int, default=None,
        help="chunks the prefetch stage may run ahead (default 1)",
    )
    p_hotpath.add_argument("--repeats", type=int, default=3)
    p_hotpath.add_argument("--seed", type=int, default=0)
    p_hotpath.add_argument(
        "--noise", choices=("paper", "off"), default="paper",
        help="noise model: the paper's calibrated stack, or an ideal "
        "(noise-free) engine profiling compute/detect only",
    )
    p_hotpath.add_argument("--out", metavar="FILE", help="write the JSON report")
    p_hotpath.add_argument(
        "--trace", metavar="PATH", default=None,
        help="capture a span trace of the correctness-check run",
    )
    p_hotpath.set_defaults(func=cmd_hotpath_bench)

    p_trace = sub.add_parser(
        "trace",
        help="deterministic demo span trace (request -> iteration -> "
        "shard -> stage)",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--requests", type=int, default=12)
    p_trace.add_argument("--max-batch-size", type=int, default=4)
    p_trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the trace here (.jsonl for JSON lines, anything else "
        "for Chrome trace-event JSON viewable in Perfetto); default: "
        "JSONL to stdout",
    )
    p_trace.add_argument(
        "--sample", type=int, default=None, metavar="RATE",
        help="head-based sampling: keep one in RATE traces (by root-span "
        "hash, deterministic across runs); incident spans always kept",
    )
    p_trace.add_argument(
        "--stream", action="store_true",
        help="stream each span to --out the moment it ends (bounded "
        "memory) instead of dumping the collector at the end",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_top = sub.add_parser(
        "top",
        help="live fleet dashboard over a demo cluster run (virtual time)",
    )
    p_top.add_argument("--replicas", type=int, default=3)
    p_top.add_argument("--requests", type=int, default=48)
    p_top.add_argument("--frames", type=int, default=6, help="frames to render")
    p_top.add_argument(
        "--rate", type=float, default=8_000.0,
        help="open-loop arrival rate (req/s, virtual time)",
    )
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument(
        "--fail-replica", type=int, default=None, metavar="ID",
        help="inject a failure of this replica mid-run (flight recorder "
        "dumps a postmortem bundle)",
    )
    p_top.add_argument(
        "--no-color", action="store_true",
        help="plain frames, no ANSI colors or screen clearing",
    )
    p_top.set_defaults(func=cmd_top)

    p_metrics = sub.add_parser(
        "metrics",
        help="Prometheus text dump of the demo workload's registry",
    )
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--requests", type=int, default=12)
    p_metrics.add_argument("--max-batch-size", type=int, default=4)
    p_metrics.add_argument(
        "--port", type=int, default=None,
        help="serve exactly one HTTP scrape on this port (0 = ephemeral) "
        "instead of printing",
    )
    p_metrics.add_argument(
        "--self-scrape", action="store_true",
        help="with --port: fire the one scrape from a background thread "
        "(demo/CI mode — no external curl needed)",
    )
    p_metrics.add_argument(
        "--timeout", type=float, default=10.0,
        help="with --port: give up waiting for the scrape after this "
        "many seconds",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_report.add_argument("--output", default="EXPERIMENTS.md")
    p_report.add_argument("--skip-accuracy", action="store_true")
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
