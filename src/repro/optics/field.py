"""WDM optical field container.

An :class:`OpticalField` is the complex field amplitude of every DWDM
channel travelling on one waveguide.  It provides the small amount of
arithmetic the circuit simulator needs (scaling, phase rotation,
intensity) while keeping the channel/wavelength bookkeeping explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optics.wdm import WDMGrid


@dataclass(frozen=True)
class OpticalField:
    """Complex field amplitudes on one waveguide, one entry per channel."""

    grid: WDMGrid
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        amplitudes = np.asarray(self.amplitudes, dtype=complex)
        if amplitudes.shape != (self.grid.n_channels,):
            raise ValueError(
                f"expected {self.grid.n_channels} channel amplitudes, "
                f"got shape {amplitudes.shape}"
            )
        object.__setattr__(self, "amplitudes", amplitudes)

    @classmethod
    def from_values(cls, grid: WDMGrid, values: np.ndarray) -> "OpticalField":
        """Encode real operand values (one per channel) as field amplitudes."""
        values = np.asarray(values, dtype=float)
        if values.shape != (grid.n_channels,):
            raise ValueError(
                f"expected {grid.n_channels} values, got shape {values.shape}"
            )
        return cls(grid, values.astype(complex))

    def scaled(self, factor: complex) -> "OpticalField":
        """Return a copy with every channel multiplied by ``factor``."""
        return OpticalField(self.grid, self.amplitudes * factor)

    def with_phase(self, phases: np.ndarray) -> "OpticalField":
        """Return a copy with per-channel phase rotations (rad) applied."""
        phases = np.asarray(phases, dtype=float)
        if phases.shape != (self.grid.n_channels,):
            raise ValueError(
                f"expected {self.grid.n_channels} phases, got shape {phases.shape}"
            )
        return OpticalField(self.grid, self.amplitudes * np.exp(1j * phases))

    @property
    def intensities(self) -> np.ndarray:
        """Per-channel optical intensity ``|E|^2``."""
        return np.abs(self.amplitudes) ** 2

    @property
    def total_intensity(self) -> float:
        """Total intensity summed over channels (what a PD detects)."""
        return float(np.sum(self.intensities))
