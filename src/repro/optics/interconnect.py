"""Optical broadcast interconnect: the physical layer of Sec. IV-C.1.

The architecture-level inter-core operand broadcast rides an optical
distribution network: Y-branch splitter trees fan the modulated WDM
signals out to the DPTC tiles.  This module builds that network as an
explicit graph (via :mod:`networkx`), so per-destination path loss,
splitter counts, and the laser power budget follow from the topology
rather than from a closed-form approximation — and the closed form used
by :func:`repro.devices.laser.splitter_tree_loss_db` can be validated
against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.devices.library import DeviceLibrary, default_library
from repro.units import db_to_linear

#: Waveguide propagation loss (dB per metre) for the distribution bus.
WAVEGUIDE_LOSS_DB_PER_M = 100.0  # 1 dB/cm

#: Physical pitch between adjacent tile drop points.
TILE_PITCH_M = 2e-3  # 2 mm


@dataclass(frozen=True)
class PathReport:
    """Loss accounting for one source-to-destination optical path."""

    destination: str
    splitters: int
    waveguide_length: float  #: m
    loss_db: float

    @property
    def transmission(self) -> float:
        return 1.0 / db_to_linear(self.loss_db)


class BroadcastTree:
    """A balanced Y-branch tree delivering one signal to ``n_leaves``.

    Nodes are ``root``, internal ``split/<level>/<index>`` junctions and
    ``leaf/<index>`` destinations; edges carry the waveguide length and
    the per-hop loss contributions.
    """

    def __init__(
        self,
        n_leaves: int,
        library: DeviceLibrary | None = None,
        tile_pitch: float = TILE_PITCH_M,
    ) -> None:
        if n_leaves < 1:
            raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
        self.n_leaves = n_leaves
        self.library = library if library is not None else default_library()
        self.tile_pitch = tile_pitch
        self.graph = nx.DiGraph()
        self._build()

    @property
    def depth(self) -> int:
        """Splitter stages from root to any leaf."""
        return math.ceil(math.log2(self.n_leaves)) if self.n_leaves > 1 else 0

    def _build(self) -> None:
        graph = self.graph
        graph.add_node("root")
        frontier = ["root"]
        level = 0
        # Grow a balanced binary tree until there are enough leaves.
        while len(frontier) < self.n_leaves:
            level += 1
            next_frontier = []
            for index, node in enumerate(frontier):
                for side in (0, 1):
                    child = f"split/{level}/{2 * index + side}"
                    graph.add_edge(
                        node,
                        child,
                        splitter=True,
                        length=self.tile_pitch / 2,
                    )
                    next_frontier.append(child)
            frontier = next_frontier
        for index in range(self.n_leaves):
            leaf = f"leaf/{index}"
            graph.add_edge(
                frontier[index % len(frontier)],
                leaf,
                splitter=False,
                length=self.tile_pitch * (1 + index % 2),
            )

    def leaves(self) -> list[str]:
        return [f"leaf/{index}" for index in range(self.n_leaves)]

    def path_report(self, leaf: str) -> PathReport:
        """Loss accounting from the root to one destination."""
        if leaf not in self.graph:
            raise KeyError(f"unknown destination {leaf!r}")
        path = nx.shortest_path(self.graph, "root", leaf)
        splitters = 0
        length = 0.0
        for src, dst in zip(path, path[1:]):
            edge = self.graph.edges[src, dst]
            splitters += int(edge["splitter"])
            length += edge["length"]
        # Each split halves the power (3.01 dB) and adds the Y-branch
        # excess loss; the waveguide adds propagation loss.
        split_loss = splitters * (
            10 * math.log10(2) + self.library.y_branch.insertion_loss_db
        )
        propagation = length * WAVEGUIDE_LOSS_DB_PER_M
        return PathReport(
            destination=leaf,
            splitters=splitters,
            waveguide_length=length,
            loss_db=split_loss + propagation,
        )

    def worst_case_loss_db(self) -> float:
        """Loss of the lossiest destination (sets the laser budget)."""
        return max(self.path_report(leaf).loss_db for leaf in self.leaves())

    def total_splitters(self) -> int:
        """Y-branches in the tree (area accounting).

        Each splitting junction fans one input into two outputs, so the
        count is half the number of splitter-tagged edges.
        """
        splitter_edges = sum(
            1 for _, _, edge in self.graph.edges(data=True) if edge["splitter"]
        )
        return splitter_edges // 2

    def power_conservation_check(self) -> float:
        """Sum of ideal leaf transmissions (1.0 for a lossless tree).

        With excess losses the sum falls below 1; it can never exceed 1
        (a passive network cannot create power) — a structural sanity
        check used by the tests.
        """
        total = 0.0
        for leaf in self.leaves():
            report = self.path_report(leaf)
            total += report.transmission
        return total


def broadcast_loss_budget(
    n_tiles: int, library: DeviceLibrary | None = None
) -> float:
    """Worst-case inter-core broadcast loss (dB) for an Nt-tile fabric."""
    return BroadcastTree(n_tiles, library).worst_case_loss_db()
