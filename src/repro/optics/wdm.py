"""Dense-WDM grid arithmetic and the microdisk FSR channel-count limit.

Implements the paper's Eq. 10: the microdisk filters impose a free
spectral range (FSR) that bounds the usable wavelength window around the
design wavelength, and the DWDM channel spacing then bounds the number
of wavelengths the accelerator can multiplex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import NM, SPEED_OF_LIGHT

#: Paper's DWDM design point: 1550 nm centre, 0.4 nm channel spacing.
DEFAULT_CENTER_WAVELENGTH = 1550 * NM
DEFAULT_CHANNEL_SPACING = 0.4 * NM


@dataclass(frozen=True)
class WDMGrid:
    """A symmetric DWDM channel grid around a centre wavelength."""

    n_channels: int
    spacing: float = DEFAULT_CHANNEL_SPACING  #: m between adjacent channels
    center: float = DEFAULT_CENTER_WAVELENGTH  #: m

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {self.n_channels}")
        if self.spacing <= 0 or self.center <= 0:
            raise ValueError("spacing and center wavelength must be positive")

    @property
    def wavelengths(self) -> np.ndarray:
        """Channel wavelengths (m), centred on :attr:`center`."""
        offsets = np.arange(self.n_channels) - (self.n_channels - 1) / 2.0
        return self.center + offsets * self.spacing

    @property
    def detunings(self) -> np.ndarray:
        """Signed wavelength offsets from the centre (m)."""
        return self.wavelengths - self.center

    @property
    def span(self) -> float:
        """Wavelength extent between the outermost channels (m)."""
        return (self.n_channels - 1) * self.spacing


def fsr_wavelength_window(
    fsr: float, center: float = DEFAULT_CENTER_WAVELENGTH
) -> tuple[float, float]:
    """Usable wavelength window (m) for a filter with the given FSR (Hz).

    Following Eq. 10 of the paper: the window spans the optical
    frequencies ``f0 +/- FSR/2`` around the design frequency.
    """
    if fsr <= 0 or center <= 0:
        raise ValueError("FSR and center wavelength must be positive")
    f0 = SPEED_OF_LIGHT / center
    lower = SPEED_OF_LIGHT / (f0 + fsr / 2.0)
    upper = SPEED_OF_LIGHT / (f0 - fsr / 2.0)
    return lower, upper


def max_channels(
    fsr: float,
    spacing: float = DEFAULT_CHANNEL_SPACING,
    center: float = DEFAULT_CENTER_WAVELENGTH,
) -> int:
    """Maximum DWDM channel count within the FSR-limited window.

    With the paper's microdisk (FSR = 5.6 THz) and 0.4 nm spacing the
    answer is 112 wavelengths.
    """
    lower, upper = fsr_wavelength_window(fsr, center)
    return int(math.floor((upper - lower) / spacing))
