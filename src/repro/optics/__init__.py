"""Field-level photonic circuit simulation substrate.

Provides the wavelength-resolved transfer-matrix models (directional
couplers, phase shifters, MZM encoding, photodetection), the DWDM grid
arithmetic of Eq. 10, and the circuit-level DDot simulator used to
validate functionality (the repository's Lumerical INTERCONNECT
substitute).
"""

from repro.optics.circuit import DESIGN_PHASE, BalancedDetectorOutput, DDotCircuit
from repro.optics.components import (
    DEFAULT_COUPLING_LENGTH_SLOPE,
    coupler_matrix,
    coupling_factor,
    mzm_encode,
    phase_response,
    phase_shifter_matrix,
    photocurrent,
)
from repro.optics.field import OpticalField
from repro.optics.interconnect import (
    BroadcastTree,
    PathReport,
    broadcast_loss_budget,
)
from repro.optics.wdm import (
    DEFAULT_CENTER_WAVELENGTH,
    DEFAULT_CHANNEL_SPACING,
    WDMGrid,
    fsr_wavelength_window,
    max_channels,
)

__all__ = [
    "DESIGN_PHASE",
    "DEFAULT_CENTER_WAVELENGTH",
    "DEFAULT_CHANNEL_SPACING",
    "DEFAULT_COUPLING_LENGTH_SLOPE",
    "BalancedDetectorOutput",
    "BroadcastTree",
    "DDotCircuit",
    "OpticalField",
    "PathReport",
    "WDMGrid",
    "broadcast_loss_budget",
    "coupler_matrix",
    "coupling_factor",
    "fsr_wavelength_window",
    "max_channels",
    "mzm_encode",
    "phase_response",
    "phase_shifter_matrix",
    "photocurrent",
]
