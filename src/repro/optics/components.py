"""Transfer-function models of the passive and active photonic devices.

All device responses are wavelength-resolved so the same functions serve
both the ideal design point and the WDM-dispersion studies of Sec. III-C:

* directional coupler: power coupling factor
  ``kappa(lam) = sin^2(pi * Lc(lam0) / (4 * Lc(lam)))`` with a linear
  coupling-length dispersion model, designed so ``kappa(lam0) = 1/2``;
* phase shifter: ``phi(lam) = phi0 * lam0 / lam`` (the geometric
  ``2*pi*dn_eff*L/lam`` dependence at fixed length);
* Mach-Zehnder modulator: full-range field encoding
  ``E_out = E_in * cos(phi)`` for values in ``[-1, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.optics.wdm import DEFAULT_CENTER_WAVELENGTH

#: Fractional change of the coupler's 100 % coupling length per metre of
#: wavelength detuning.  Calibrated so 25 DWDM channels at 0.4 nm spacing
#: produce the paper's ~1.8 % worst-case kappa deviation (Fig. 3).
DEFAULT_COUPLING_LENGTH_SLOPE = -2.39e6  # 1/m


def coupling_factor(
    wavelengths: np.ndarray,
    center: float = DEFAULT_CENTER_WAVELENGTH,
    length_slope: float = DEFAULT_COUPLING_LENGTH_SLOPE,
) -> np.ndarray:
    """Wavelength-dependent power coupling factor ``kappa(lam)``.

    The coupler is designed for 50:50 splitting at ``center``; detuned
    channels see a slightly different coupling length and therefore a
    perturbed split ratio.
    """
    wavelengths = np.asarray(wavelengths, dtype=float)
    length_ratio = 1.0 / (1.0 + length_slope * (wavelengths - center))
    return np.sin(np.pi * length_ratio / 4.0) ** 2


def phase_response(
    wavelengths: np.ndarray,
    design_phase: float,
    center: float = DEFAULT_CENTER_WAVELENGTH,
) -> np.ndarray:
    """Phase (rad) of a fixed-length shifter designed for ``design_phase``.

    ``phi(lam) = 2*pi*dn_eff*L / lam`` scales as ``1/lam`` at fixed
    geometry, so detuned channels acquire a small phase error relative to
    the design point.
    """
    wavelengths = np.asarray(wavelengths, dtype=float)
    return design_phase * center / wavelengths


def coupler_matrix(kappa: float | np.ndarray) -> np.ndarray:
    """2x2 field transfer matrix of a directional coupler.

    ``[[t, j*k], [j*k, t]]`` with ``t = sqrt(1 - kappa)`` and
    ``k = sqrt(kappa)``.  Accepts a scalar or an array of coupling
    factors; the matrix axes are the last two dimensions of the result.
    """
    kappa = np.asarray(kappa, dtype=float)
    if np.any((kappa < 0.0) | (kappa > 1.0)):
        raise ValueError("coupling factor must lie in [0, 1]")
    t = np.sqrt(1.0 - kappa)
    k = np.sqrt(kappa)
    matrix = np.empty(kappa.shape + (2, 2), dtype=complex)
    matrix[..., 0, 0] = t
    matrix[..., 0, 1] = 1j * k
    matrix[..., 1, 0] = 1j * k
    matrix[..., 1, 1] = t
    return matrix


def phase_shifter_matrix(phase: float | np.ndarray) -> np.ndarray:
    """2x2 transfer matrix applying ``phase`` (rad) to the lower arm."""
    phase = np.asarray(phase, dtype=float)
    matrix = np.zeros(phase.shape + (2, 2), dtype=complex)
    matrix[..., 0, 0] = 1.0
    matrix[..., 1, 1] = np.exp(1j * phase)
    return matrix


def mzm_encode(values: np.ndarray, clip: bool = False) -> np.ndarray:
    """Full-range MZM field encoding of digital values in ``[-1, 1]``.

    The MZM's differential drive realises ``E_out = E_in * cos(phi)``
    with ``phi in [0, pi]``, so the output field amplitude equals the
    encoded value, signs included.

    Args:
        values: operand values to encode.
        clip: clip out-of-range values to ``[-1, 1]`` instead of raising
            (the physical modulator saturates at its rails).
    """
    values = np.asarray(values, dtype=float)
    if clip:
        return np.clip(values, -1.0, 1.0)
    if np.any(np.abs(values) > 1.0 + 1e-12):
        raise ValueError("MZM can only encode values in [-1, 1]; scale first")
    return values.astype(float)


def photocurrent(fields: np.ndarray, responsivity: float = 1.0) -> float:
    """Photocurrent (A per unit power) of a PD summing WDM channels.

    The photodiode responds to total incident intensity: the squared
    magnitudes of all wavelength channels add.
    """
    fields = np.asarray(fields, dtype=complex)
    return float(responsivity * np.sum(np.abs(fields) ** 2))
