"""Circuit-level simulation of the DDot interference engine.

This is the repository's substitute for the Lumerical INTERCONNECT
validation of the paper's Sec. V-A: a steady-state, wavelength-resolved
transfer-matrix solve of the DDot circuit (phase shifter + 50:50
directional coupler + balanced photodetection), including

* wavelength-dependent coupling and phase responses (WDM dispersion),
* stochastic encoding noise on operand magnitudes and relative phases,
* optional photodetector responsivity mismatch.

The simulator computes physical photocurrents; :meth:`DDotCircuit.dot_product`
then applies the fixed design-point calibration (divide by ``2 * R``) to
recover the dot-product estimate, exactly as the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optics.components import (
    DEFAULT_COUPLING_LENGTH_SLOPE,
    coupling_factor,
    phase_response,
)
from repro.optics.wdm import WDMGrid

#: The DDot phase shifter's design point (Sec. III-A): -90 degrees.
DESIGN_PHASE = -np.pi / 2.0


@dataclass(frozen=True)
class BalancedDetectorOutput:
    """Photocurrents of the two balanced photodiodes and their difference."""

    current_sum_port: float  #: PD on the (x + y) interference port
    current_diff_port: float  #: PD on the j(x - y) interference port

    @property
    def differential(self) -> float:
        return self.current_sum_port - self.current_diff_port


class DDotCircuit:
    """Transfer-matrix model of one DDot dot-product engine.

    Args:
        grid: the DWDM channel grid carrying the operands.
        include_dispersion: model the wavelength dependence of the
            coupler and phase shifter (on by default, as in the paper's
            INTERCONNECT runs).
        coupling_length_slope: coupler dispersion strength (1/m).
        responsivities: ``(R0, R1)`` of the balanced photodiode pair;
            mismatched values model imperfect balancing.
    """

    def __init__(
        self,
        grid: WDMGrid,
        include_dispersion: bool = True,
        coupling_length_slope: float = DEFAULT_COUPLING_LENGTH_SLOPE,
        responsivities: tuple[float, float] = (1.0, 1.0),
    ) -> None:
        self.grid = grid
        self.include_dispersion = include_dispersion
        self.responsivities = responsivities
        if include_dispersion:
            self._kappa = coupling_factor(
                grid.wavelengths, grid.center, coupling_length_slope
            )
            self._ps_phase = phase_response(
                grid.wavelengths, DESIGN_PHASE, grid.center
            )
        else:
            self._kappa = np.full(grid.n_channels, 0.5)
            self._ps_phase = np.full(grid.n_channels, DESIGN_PHASE)

    @property
    def kappa(self) -> np.ndarray:
        """Per-channel power coupling factor of the output coupler."""
        return self._kappa

    @property
    def phase_shifter_phase(self) -> np.ndarray:
        """Per-channel realised phase (rad) of the -90 degree shifter."""
        return self._ps_phase

    def detect(
        self,
        x: np.ndarray,
        y: np.ndarray,
        relative_phase_error: np.ndarray | None = None,
    ) -> BalancedDetectorOutput:
        """Propagate encoded operands through the circuit to photocurrents.

        Args:
            x, y: real field amplitudes per channel (length <= grid size;
                shorter vectors are zero-padded, i.e. unused wavelengths
                carry no light).
            relative_phase_error: per-channel phase drift (rad) of operand
                ``y`` relative to ``x`` (the only phase that matters for
                the interference; see Sec. III-C).
        """
        x = self._pad(np.asarray(x, dtype=float))
        y = self._pad(np.asarray(y, dtype=float))
        if relative_phase_error is None:
            relative_phase_error = np.zeros(self.grid.n_channels)
        else:
            relative_phase_error = self._pad(
                np.asarray(relative_phase_error, dtype=float)
            )

        t = np.sqrt(1.0 - self._kappa)
        k = np.sqrt(self._kappa)
        y_field = y * np.exp(1j * (self._ps_phase + relative_phase_error))

        z_sum = t * x + 1j * k * y_field
        z_diff = 1j * k * x + t * y_field

        r0, r1 = self.responsivities
        current0 = r0 * float(np.sum(np.abs(z_sum) ** 2))
        current1 = r1 * float(np.sum(np.abs(z_diff) ** 2))
        return BalancedDetectorOutput(current0, current1)

    def dot_product(
        self,
        x: np.ndarray,
        y: np.ndarray,
        magnitude_std: float = 0.0,
        phase_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Dot-product estimate with stochastic encoding noise.

        Magnitude noise is relative (``x_hat = x * (1 + N(0, sigma^2))``,
        matching the paper's ``delta_x ~ N(0, (sigma*|x|)^2)``); phase
        noise is the relative drift between the two operands (rad).
        Returns the calibrated differential photocurrent: the hardware
        divides by the design-point scale ``2 * R0``.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"operand shapes differ: {x.shape} vs {y.shape}")
        if magnitude_std or phase_std:
            if rng is None:
                rng = np.random.default_rng()
            x = x * (1.0 + rng.normal(0.0, magnitude_std, x.shape))
            y = y * (1.0 + rng.normal(0.0, magnitude_std, y.shape))
            phase_error = rng.normal(0.0, phase_std, x.shape)
        else:
            phase_error = np.zeros_like(x)
        output = self.detect(x, y, phase_error)
        return output.differential / (2.0 * self.responsivities[0])

    def _pad(self, values: np.ndarray) -> np.ndarray:
        if values.ndim != 1:
            raise ValueError(f"expected a vector, got shape {values.shape}")
        if values.size > self.grid.n_channels:
            raise ValueError(
                f"vector of length {values.size} exceeds the "
                f"{self.grid.n_channels}-channel WDM grid"
            )
        if values.size == self.grid.n_channels:
            return values
        padded = np.zeros(self.grid.n_channels, dtype=values.dtype)
        padded[: values.size] = values
        return padded
