"""Structured sparse attention support (Sec. VI-A, Fig. 16).

The paper shows how block-wise sparse attention patterns (window/local
attention in the style of BigBird/BlockBERT) map onto DPTC: blockify Q
and K by the pattern, run the surviving blocks as small *dense* matrix
products, compress the sparse attention map row-wise, and run AV the
same way.  This module implements that reformulation end to end:

* :class:`WindowAttentionPattern` — the pattern algebra (masks, block
  coverage);
* :func:`blockified_qk_ops` / :func:`blockified_av_ops` — the dense
  GEMM chunks the pattern induces, as :class:`GEMMOp` descriptors;
* :func:`sparse_attention` — a functional execution path that computes
  attention through the blockified chunks (verifiably equal to masked
  dense attention);
* cycle-count helpers to quantify the savings on a given DPTC geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dptc import DPTCGeometry
from repro.workloads.gemm import MODULE_ATTENTION, GEMMOp


@dataclass(frozen=True)
class WindowAttentionPattern:
    """Window-local attention: token ``i`` attends to ``|i - j| <= r``.

    Attributes:
        n_tokens: sequence length.
        window: odd window size ``w``; the one-sided reach is
            ``r = (w - 1) / 2``.
        block: blockification granularity ``b`` (rows per Q chunk).
    """

    n_tokens: int
    window: int
    block: int

    def __post_init__(self) -> None:
        if self.n_tokens < 1:
            raise ValueError(f"n_tokens must be >= 1, got {self.n_tokens}")
        if self.window < 1 or self.window % 2 == 0:
            raise ValueError(f"window must be odd and >= 1, got {self.window}")
        if self.block < 1:
            raise ValueError(f"block must be >= 1, got {self.block}")

    @property
    def reach(self) -> int:
        """One-sided attention reach ``(w - 1) / 2``."""
        return (self.window - 1) // 2

    @property
    def n_blocks(self) -> int:
        """Number of Q row blocks."""
        return math.ceil(self.n_tokens / self.block)

    def mask(self) -> np.ndarray:
        """Boolean ``[n, n]`` mask of allowed attention entries."""
        idx = np.arange(self.n_tokens)
        return np.abs(idx[:, None] - idx[None, :]) <= self.reach

    def density(self) -> float:
        """Fraction of the attention map inside the window."""
        return float(np.mean(self.mask()))

    def q_block_rows(self, block_index: int) -> tuple[int, int]:
        """Row range ``[start, stop)`` of one Q block."""
        if not 0 <= block_index < self.n_blocks:
            raise IndexError(f"block index {block_index} out of range")
        start = block_index * self.block
        return start, min(start + self.block, self.n_tokens)

    def key_span(self, block_index: int) -> tuple[int, int]:
        """Key-row range ``[start, stop)`` covering the whole Q block.

        The union of the windows of every row in the block: blockified
        execution computes this slightly-larger dense chunk and masks
        the corners in the softmax.
        """
        q_start, q_stop = self.q_block_rows(block_index)
        start = max(0, q_start - self.reach)
        stop = min(self.n_tokens, (q_stop - 1) + self.reach + 1)
        return start, stop


def blockified_qk_ops(
    pattern: WindowAttentionPattern, head_dim: int, name: str = "sparse_qkt"
) -> list[GEMMOp]:
    """Dense GEMM chunks implementing the blockified ``Q K^T``."""
    ops = []
    for index in range(pattern.n_blocks):
        q_start, q_stop = pattern.q_block_rows(index)
        k_start, k_stop = pattern.key_span(index)
        ops.append(
            GEMMOp(
                f"{name}[{index}]",
                m=q_stop - q_start,
                k=head_dim,
                n=k_stop - k_start,
                module=MODULE_ATTENTION,
                dynamic=True,
            )
        )
    return ops


def blockified_av_ops(
    pattern: WindowAttentionPattern, head_dim: int, name: str = "sparse_av"
) -> list[GEMMOp]:
    """Dense GEMM chunks implementing the row-compressed ``A V``."""
    ops = []
    for index in range(pattern.n_blocks):
        q_start, q_stop = pattern.q_block_rows(index)
        k_start, k_stop = pattern.key_span(index)
        ops.append(
            GEMMOp(
                f"{name}[{index}]",
                m=q_stop - q_start,
                k=k_stop - k_start,
                n=head_dim,
                module=MODULE_ATTENTION,
                dynamic=True,
            )
        )
    return ops


def sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern: WindowAttentionPattern,
    matmul=np.matmul,
) -> np.ndarray:
    """Window attention computed through the blockified dense chunks.

    Args:
        q, k, v: ``[n, d]`` activations of one head.
        pattern: the window pattern (``pattern.n_tokens`` must equal n).
        matmul: the matrix-product executor; pass
            ``DPTC(...).matmul`` to run the chunks on a (noisy)
            photonic core.

    Returns:
        ``[n, d]`` attention output, identical (up to executor noise) to
        dense attention under the window mask.
    """
    n, d = q.shape
    if k.shape != (n, d) or v.shape != (n, d):
        raise ValueError("q, k, v must share the same [n, d] shape")
    if pattern.n_tokens != n:
        raise ValueError(
            f"pattern covers {pattern.n_tokens} tokens but q has {n} rows"
        )
    scale = 1.0 / math.sqrt(d)
    output = np.empty_like(q, dtype=float)
    idx = np.arange(n)
    for index in range(pattern.n_blocks):
        q_start, q_stop = pattern.q_block_rows(index)
        k_start, k_stop = pattern.key_span(index)
        scores = matmul(q[q_start:q_stop], k[k_start:k_stop].T) * scale
        # Mask the chunk corners that fall outside the exact window.
        rows = idx[q_start:q_stop, None]
        cols = idx[None, k_start:k_stop]
        allowed = np.abs(rows - cols) <= pattern.reach
        scores = np.where(allowed, scores, -np.inf)
        scores -= scores.max(axis=1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=1, keepdims=True)
        output[q_start:q_stop] = matmul(weights, v[k_start:k_stop])
    return output


def dense_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                    mask: np.ndarray | None = None) -> np.ndarray:
    """Reference dense attention (optionally masked) for correctness checks."""
    n, d = q.shape
    scores = (q @ k.T) / math.sqrt(d)
    if mask is not None:
        scores = np.where(mask, scores, -np.inf)
    scores -= scores.max(axis=1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=1, keepdims=True)
    return weights @ v


def sparse_cycles(
    pattern: WindowAttentionPattern, head_dim: int, geometry: DPTCGeometry
) -> int:
    """DPTC cycles for blockified QK^T + AV of one head."""
    ops = blockified_qk_ops(pattern, head_dim) + blockified_av_ops(
        pattern, head_dim
    )
    return sum(geometry.cycles(op.m, op.k, op.n) for op in ops)


def dense_cycles(
    n_tokens: int, head_dim: int, geometry: DPTCGeometry
) -> int:
    """DPTC cycles for dense QK^T + AV of one head."""
    return geometry.cycles(n_tokens, head_dim, n_tokens) + geometry.cycles(
        n_tokens, n_tokens, head_dim
    )


def cycle_savings(
    pattern: WindowAttentionPattern, head_dim: int, geometry: DPTCGeometry
) -> float:
    """Dense-over-sparse cycle ratio (>1 when blockification wins)."""
    return dense_cycles(pattern.n_tokens, head_dim, geometry) / sparse_cycles(
        pattern, head_dim, geometry
    )
