"""Autoregressive LLM workloads and memory-bound analysis (Sec. VI-B).

The paper's discussion section examines extending the accelerator to
decoder-only LLMs: token-by-token generation produces small-dimension
GEMMs with low arithmetic intensity, making the workload memory-bound
and under-utilising the photonic compute.  This module implements that
analysis concretely:

* decoder model configs (GPT-2-style) and their **prefill** (prompt
  processing, large GEMMs) and **decode** (one token, GEMV-shaped)
  traces;
* KV-cache sizing and the **recompute-vs-cache** trade the paper cites
  (recalculating K/V trades memory for cheap optical compute);
* arithmetic-intensity / roofline classification against the
  accelerator's HBM bandwidth;
* the batching strategy: how many concurrent requests are needed before
  decode becomes compute-bound on a given LT configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.gemm import (
    MODULE_ATTENTION,
    MODULE_FFN,
    MODULE_PROJECTION,
    GEMMOp,
)


@dataclass(frozen=True)
class DecoderConfig:
    """A decoder-only (causal) Transformer for autoregressive generation."""

    name: str
    depth: int
    dim: int
    heads: int
    mlp_ratio: float = 4.0
    vocab_size: int = 50_257

    def __post_init__(self) -> None:
        if self.depth < 1 or self.dim < 1 or self.heads < 1:
            raise ValueError(f"invalid decoder config: {self}")
        if self.dim % self.heads != 0:
            raise ValueError(f"dim {self.dim} not divisible by heads {self.heads}")

    @property
    def head_dim(self) -> int:
        return self.dim // self.heads

    @property
    def ffn_dim(self) -> int:
        return int(self.dim * self.mlp_ratio)


def gpt2_small() -> DecoderConfig:
    return DecoderConfig("gpt2-small", depth=12, dim=768, heads=12)


def gpt2_medium() -> DecoderConfig:
    return DecoderConfig("gpt2-medium", depth=24, dim=1024, heads=16)


def gpt2_large() -> DecoderConfig:
    return DecoderConfig("gpt2-large", depth=36, dim=1280, heads=20)


def prefill_trace(config: DecoderConfig, prompt_len: int) -> list[GEMMOp]:
    """GEMMs of the prompt-processing phase (large, compute-friendly)."""
    if prompt_len < 1:
        raise ValueError(f"prompt_len must be >= 1, got {prompt_len}")
    seq, dim = prompt_len, config.dim
    return [
        GEMMOp("qkv_proj", seq, dim, 3 * dim, module=MODULE_PROJECTION,
               count=config.depth),
        GEMMOp("attn_qkt", seq, config.head_dim, seq, module=MODULE_ATTENTION,
               dynamic=True, count=config.depth * config.heads),
        GEMMOp("attn_av", seq, seq, config.head_dim, module=MODULE_ATTENTION,
               dynamic=True, count=config.depth * config.heads),
        GEMMOp("out_proj", seq, dim, dim, module=MODULE_PROJECTION,
               count=config.depth),
        GEMMOp("ffn1", seq, dim, config.ffn_dim, module=MODULE_FFN,
               count=config.depth),
        GEMMOp("ffn2", seq, config.ffn_dim, dim, module=MODULE_FFN,
               count=config.depth),
    ]


def decode_trace(
    config: DecoderConfig, context_len: int, batch: int = 1
) -> list[GEMMOp]:
    """GEMMs of generating one token at the given context length.

    With batch ``b``, the linear layers batch the token vectors of all
    requests into ``[b, dim]`` activations; the attention products stay
    per-request (each request attends over its own KV cache).
    """
    if context_len < 1:
        raise ValueError(f"context_len must be >= 1, got {context_len}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    dim = config.dim
    return [
        GEMMOp("qkv_proj", batch, dim, 3 * dim, module=MODULE_PROJECTION,
               count=config.depth),
        GEMMOp("attn_qkt", 1, config.head_dim, context_len,
               module=MODULE_ATTENTION, dynamic=True,
               count=batch * config.depth * config.heads),
        GEMMOp("attn_av", 1, context_len, config.head_dim,
               module=MODULE_ATTENTION, dynamic=True,
               count=batch * config.depth * config.heads),
        GEMMOp("out_proj", batch, dim, dim, module=MODULE_PROJECTION,
               count=config.depth),
        GEMMOp("ffn1", batch, dim, config.ffn_dim, module=MODULE_FFN,
               count=config.depth),
        GEMMOp("ffn2", batch, config.ffn_dim, dim, module=MODULE_FFN,
               count=config.depth),
    ]


def kv_cache_bytes(
    config: DecoderConfig, context_len: int, bits: int = 8, batch: int = 1
) -> int:
    """Bytes of K/V tensors cached for generation at ``context_len``."""
    if context_len < 0:
        raise ValueError(f"context_len must be >= 0, got {context_len}")
    per_token = 2 * config.depth * config.dim  # K and V per layer
    return math.ceil(per_token * context_len * batch * bits / 8)


def shared_kv_cache_bytes(
    config: DecoderConfig,
    prefix_len: int,
    context_lens: "list[int]",
    *,
    bits: int = 8,
    block_size: int = 1,
) -> int:
    """Fleet KV bytes when sessions share a common prefix's pages.

    The prefix-sharing extension of :func:`kv_cache_bytes`: ``N``
    sessions forked from the same ``prefix_len``-token prompt charge
    the prefix's page-rounded bytes **once**, plus each session's own
    page-rounded suffix (``context - prefix`` generated tokens, which
    start on a fresh page at the copy-on-write fork boundary).  With
    ``prefix_len=0`` this degenerates to the unshared per-session sum.
    """
    if prefix_len < 0:
        raise ValueError(f"prefix_len must be >= 0, got {prefix_len}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    pages = lambda tokens: -(-tokens // block_size)  # noqa: E731
    total = kv_cache_bytes(config, pages(prefix_len) * block_size, bits=bits)
    for context_len in context_lens:
        if context_len < prefix_len:
            raise ValueError(
                f"context {context_len} shorter than the shared prefix "
                f"{prefix_len}"
            )
        suffix = pages(context_len - prefix_len) * block_size
        total += kv_cache_bytes(config, suffix, bits=bits)
    return total


def pad_prompts(
    prompts: "list",
    *,
    pad_id: int = 0,
    length: int | None = None,
) -> "tuple":
    """Coalesce ragged token prompts into one ``[batch, length]`` array.

    The serving batcher's padding policy for prompt batches: right-pad
    every prompt with ``pad_id`` to a *fixed* target length (the batch
    maximum by default, a model's fixed sequence length when given), so
    shorter prompts ride in the same batch as longer ones.  Returns the
    padded array and the original lengths (for un-padding outputs).
    """
    import numpy as np

    if not prompts:
        raise ValueError("need at least one prompt")
    arrays = [np.asarray(p, dtype=int) for p in prompts]
    for arr in arrays:
        if arr.ndim != 1 or arr.shape[0] < 1:
            raise ValueError(f"prompts must be non-empty 1-D, got shape {arr.shape}")
    lengths = [arr.shape[0] for arr in arrays]
    target = max(lengths) if length is None else length
    if max(lengths) > target:
        raise ValueError(
            f"prompt of length {max(lengths)} exceeds pad target {target}"
        )
    padded = np.full((len(arrays), target), pad_id, dtype=int)
    for i, arr in enumerate(arrays):
        padded[i, : arr.shape[0]] = arr
    return padded, lengths


def decode_servable(
    config: DecoderConfig,
    *,
    executor=None,
    cache=None,
    seed: int | None = None,
    block_size: int | None = None,
    kv_capacity_bytes: int | None = None,
    kv_bits: int | None = None,
    engine=None,
):
    """Serving entry point: a decode-step servable for this decoder.

    Returns a :class:`~repro.serving.servable.DecodeServable` — batched
    photonic GEMV projections (the :func:`decode_trace` shapes) with
    per-session digital attention and
    :class:`~repro.serving.cache.SessionCache` KV accounting that is
    consistent with :func:`kv_cache_bytes` by construction.

    ``block_size`` selects the KV page size (tokens per
    :class:`~repro.serving.cache.KVBlock`; 1 = exact per-token
    accounting) and ``kv_capacity_bytes`` bounds the session
    :class:`~repro.serving.cache.BlockPool` — the budget the
    continuous scheduler enforces by preemption.  Ignored when an
    explicit ``cache`` is supplied.

    ``engine`` (an :class:`~repro.serving.config.EngineConfig`) supplies
    the seed, paging, and accelerator knobs in one object — the unified
    serving API; explicit keyword arguments override the corresponding
    engine fields.
    """
    # Lazy import: workloads stays importable without the serving layer.
    from repro.serving.servable import DecodeServable

    if engine is not None and executor is None:
        from repro.neural.photonic import PhotonicExecutor

        executor = PhotonicExecutor.ideal(
            num_cores=engine.num_cores,
            shard_axis=engine.shard_axis,
            backend=engine.backend,
            chunk_size=engine.chunk_size,
            pipeline_depth=engine.pipeline_depth,
        )
    if seed is None:
        seed = engine.seed if engine is not None else 0
    if block_size is None:
        block_size = engine.block_size if engine is not None else 1
    if kv_capacity_bytes is None and engine is not None:
        kv_capacity_bytes = engine.kv_capacity_bytes
    if kv_bits is None:
        kv_bits = engine.kv_bits if engine is not None else 8
    if cache is not None:
        return DecodeServable(
            config, executor=executor, cache=cache, seed=seed, kv_bits=kv_bits
        )
    return DecodeServable(
        config,
        executor=executor,
        seed=seed,
        block_size=block_size,
        kv_capacity_bytes=kv_capacity_bytes,
        kv_bits=kv_bits,
    )


def kv_recompute_trace(config: DecoderConfig, context_len: int) -> list[GEMMOp]:
    """Extra GEMMs when K/V are recomputed instead of cached.

    The paper's Sec. VI-B cites trading memory for 'cost-effective and
    rapid optical computation': every decode step re-projects K and V
    for the whole context.
    """
    if context_len < 1:
        raise ValueError(f"context_len must be >= 1, got {context_len}")
    return [
        GEMMOp(
            "kv_reproject",
            context_len,
            config.dim,
            2 * config.dim,
            module=MODULE_PROJECTION,
            count=config.depth,
        )
    ]
