"""Transformer model configurations and their GEMM traces.

The model zoo covers the paper's evaluation workloads: DeiT-T/S/B on
224x224 images (sequence length 197 with the class token) and BERT-base
/ BERT-large at configurable sequence lengths (the paper uses 128 and
320).  :func:`gemm_trace` expands a configuration into the exact list of
GEMM operations one single-batch inference performs, labelled by module
so the Table V rows (MHA / FFN / All) can be regenerated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.workloads.gemm import (
    MODULE_ATTENTION,
    MODULE_EMBEDDING,
    MODULE_FFN,
    MODULE_HEAD,
    MODULE_PROJECTION,
    GEMMOp,
)

KIND_VISION = "vision"
KIND_TEXT = "text"


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters of an encoder-style Transformer."""

    name: str
    depth: int  #: number of encoder blocks
    dim: int  #: embedding dimension
    heads: int  #: attention heads
    seq_len: int  #: tokens per inference (includes CLS for vision)
    mlp_ratio: float = 4.0
    kind: str = KIND_VISION
    n_classes: int = 1000
    patch_size: int = 16  #: vision only
    image_size: int = 224  #: vision only
    in_channels: int = 3  #: vision only

    def __post_init__(self) -> None:
        if self.depth < 1 or self.dim < 1 or self.heads < 1 or self.seq_len < 1:
            raise ValueError(f"invalid transformer config: {self}")
        if self.dim % self.heads != 0:
            raise ValueError(
                f"dim {self.dim} not divisible by heads {self.heads}"
            )
        if self.kind not in (KIND_VISION, KIND_TEXT):
            raise ValueError(f"unknown kind {self.kind!r}")

    @property
    def head_dim(self) -> int:
        return self.dim // self.heads

    @property
    def ffn_dim(self) -> int:
        return int(self.dim * self.mlp_ratio)

    @property
    def n_patches(self) -> int:
        """Patches per image (vision models)."""
        return (self.image_size // self.patch_size) ** 2

    @property
    def patch_dim(self) -> int:
        """Flattened patch vector length (the patch-embedding GEMM's k)."""
        return self.patch_size * self.patch_size * self.in_channels


def deit_tiny(image_size: int = 224) -> TransformerConfig:
    """DeiT-T: 12 layers, dim 192, 3 heads (paper's primary workload)."""
    seq = (image_size // 16) ** 2 + 1
    return TransformerConfig(
        "deit-tiny", depth=12, dim=192, heads=3, seq_len=seq, image_size=image_size
    )


def deit_small(image_size: int = 224) -> TransformerConfig:
    """DeiT-S: 12 layers, dim 384, 6 heads."""
    seq = (image_size // 16) ** 2 + 1
    return TransformerConfig(
        "deit-small", depth=12, dim=384, heads=6, seq_len=seq, image_size=image_size
    )


def deit_base(image_size: int = 224) -> TransformerConfig:
    """DeiT-B: 12 layers, dim 768, 12 heads."""
    seq = (image_size // 16) ** 2 + 1
    return TransformerConfig(
        "deit-base", depth=12, dim=768, heads=12, seq_len=seq, image_size=image_size
    )


def bert_base(seq_len: int = 128) -> TransformerConfig:
    """BERT-base: 12 layers, dim 768, 12 heads."""
    return TransformerConfig(
        "bert-base",
        depth=12,
        dim=768,
        heads=12,
        seq_len=seq_len,
        kind=KIND_TEXT,
        n_classes=2,
    )


def bert_large(seq_len: int = 320) -> TransformerConfig:
    """BERT-large: 24 layers, dim 1024, 16 heads."""
    return TransformerConfig(
        "bert-large",
        depth=24,
        dim=1024,
        heads=16,
        seq_len=seq_len,
        kind=KIND_TEXT,
        n_classes=2,
    )


#: The five evaluation workloads of the paper's Fig. 13.
PAPER_WORKLOADS = {
    "DeiT-T-224": deit_tiny,
    "DeiT-S-224": deit_small,
    "DeiT-B-224": deit_base,
    "BERT-base-128": bert_base,
    "BERT-large-320": bert_large,
}


def gemm_trace(
    config: TransformerConfig,
    include_head: bool = True,
    batch_size: int = 1,
    num_cores: int = 1,
    shard_axis: str = "batch",
) -> list[GEMMOp]:
    """GEMM operations of one batched inference, in execution order.

    Attention products (QK^T and AV) are labelled dynamic — both
    operands are runtime activations; everything else multiplies an
    activation by a static weight matrix.

    Args:
        config: model architecture.
        include_head: include the classifier (and BERT pooler) GEMMs.
        batch_size: sequences per inference.  The batched execution
            engine runs each op's whole ``batch x count`` stack in one
            photonic call; for the trace this multiplies every op's
            instance count (weights are shared across the batch, so use
            ``batch_size=1`` when counting parameters).
        num_cores: shard each op across this many DPTC cores and return
            the *critical-path* (largest) per-core slice.  The
            whole-grid latency model already divides tile counts by
            ``config.n_cores``; this knob instead yields the trace one
            core of a :class:`~repro.core.sharding.ShardedDPTC`-style
            split executes.
        shard_axis: which axis the per-core slice cuts, matching the
            functional engine's knob.  ``"batch"`` shards each op's
            instance stack: counts become ``ceil(count / num_cores)``.
            ``"contraction"`` shards each op's K axis: ``k`` becomes
            the largest contiguous slab ``ceil(k / num_cores)`` and
            ``k_splits`` records how many slabs (at most ``k``) feed
            the digital partial-sum accumulator, so the latency/energy
            models see the K-split tile counts *and* the extra digital
            accumulation work.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    if shard_axis not in ("batch", "contraction"):
        raise ValueError(
            f"shard_axis must be 'batch' or 'contraction', got {shard_axis!r}"
        )
    seq = config.seq_len
    dim = config.dim
    ops: list[GEMMOp] = []

    if config.kind == KIND_VISION:
        ops.append(
            GEMMOp(
                "patch_embed",
                m=config.n_patches,
                k=config.patch_dim,
                n=dim,
                module=MODULE_EMBEDDING,
            )
        )
    # Text models embed tokens via table lookup: no GEMM.

    ops.append(
        GEMMOp(
            "qkv_proj",
            m=seq,
            k=dim,
            n=3 * dim,
            module=MODULE_PROJECTION,
            count=config.depth,
        )
    )
    ops.append(
        GEMMOp(
            "attn_qkt",
            m=seq,
            k=config.head_dim,
            n=seq,
            module=MODULE_ATTENTION,
            dynamic=True,
            count=config.depth * config.heads,
        )
    )
    ops.append(
        GEMMOp(
            "attn_av",
            m=seq,
            k=seq,
            n=config.head_dim,
            module=MODULE_ATTENTION,
            dynamic=True,
            count=config.depth * config.heads,
        )
    )
    ops.append(
        GEMMOp(
            "out_proj",
            m=seq,
            k=dim,
            n=dim,
            module=MODULE_PROJECTION,
            count=config.depth,
        )
    )
    ops.append(
        GEMMOp(
            "ffn1",
            m=seq,
            k=dim,
            n=config.ffn_dim,
            module=MODULE_FFN,
            count=config.depth,
        )
    )
    ops.append(
        GEMMOp(
            "ffn2",
            m=seq,
            k=config.ffn_dim,
            n=dim,
            module=MODULE_FFN,
            count=config.depth,
        )
    )

    if include_head:
        if config.kind == KIND_VISION:
            ops.append(
                GEMMOp("head", m=1, k=dim, n=config.n_classes, module=MODULE_HEAD)
            )
        else:
            # BERT-style pooler on the CLS token, then the classifier.
            ops.append(GEMMOp("pooler", m=1, k=dim, n=dim, module=MODULE_HEAD))
            ops.append(
                GEMMOp("classifier", m=1, k=dim, n=config.n_classes, module=MODULE_HEAD)
            )
    if batch_size > 1:
        ops = [replace(op, count=op.count * batch_size) for op in ops]
    if num_cores > 1:
        if shard_axis == "contraction":
            # Critical-path per-core slice of the K split: the largest
            # contiguous slab (shard_bounds front-loads the remainder),
            # with k_splits recording how many slabs the digital
            # accumulator merges (cores beyond k idle).
            ops = [
                replace(
                    op,
                    k=math.ceil(op.k / num_cores),
                    k_splits=min(num_cores, op.k),
                )
                for op in ops
            ]
        else:
            ops = [
                replace(op, count=max(1, math.ceil(op.count / num_cores)))
                for op in ops
            ]
    return ops


def model_parameters(config: TransformerConfig) -> int:
    """Approximate parameter count (weights of all GEMM layers)."""
    return sum(op.static_weight_elements for op in gemm_trace(config))


def servable_model(
    config: TransformerConfig,
    *,
    executor=None,
    vocab_size: int = 32,
    seed: int | None = None,
    engine=None,
):
    """Functional serving entry point: a model matching this architecture.

    Builds the noise-aware functional model the serving subsystem wraps
    — :class:`~repro.neural.vision.TinyViT` for vision configs,
    :class:`~repro.neural.text.TinyBERT` for text configs — with this
    config's depth/dim/heads/sequence geometry, sharing one photonic
    ``executor`` across every matmul.  Use small custom configs for
    interactive serving; the paper-scale zoo entries build but execute
    slowly on CPU.

    Args:
        config: architecture to instantiate (vision configs must be
            single-channel: the functional patch embedding consumes
            ``[H, W]`` images).
        executor: shared :class:`~repro.neural.photonic.PhotonicExecutor`
            (defaults to the model's own ideal executor, or — when
            ``engine`` is given — an ideal executor with the engine's
            ``num_cores`` / ``shard_axis`` / ``backend``).
        vocab_size: token vocabulary for text configs.
        seed: weight-initialisation seed (equal seeds give bit-identical
            models — the serving equivalence gate relies on this).
            Defaults to ``engine.seed`` when an engine config is given,
            else 0.
        engine: an :class:`~repro.serving.config.EngineConfig` supplying
            the accelerator and seed knobs in one object (the unified
            serving API); an explicit ``executor``/``seed`` overrides
            the corresponding engine field.
    """
    # Lazy import: workloads stays an analytic layer; only this entry
    # point pulls in the functional neural stack.
    from repro.neural.text import TinyBERT
    from repro.neural.vision import TinyViT

    if engine is not None and executor is None:
        from repro.neural.photonic import PhotonicExecutor

        executor = PhotonicExecutor.ideal(
            num_cores=engine.num_cores,
            shard_axis=engine.shard_axis,
            backend=engine.backend,
            chunk_size=engine.chunk_size,
            pipeline_depth=engine.pipeline_depth,
        )
    if seed is None:
        seed = engine.seed if engine is not None else 0

    if config.kind == KIND_VISION:
        if config.in_channels != 1:
            raise ValueError(
                "servable vision models are single-channel; got "
                f"in_channels={config.in_channels}"
            )
        return TinyViT(
            image_size=config.image_size,
            patch_size=config.patch_size,
            dim=config.dim,
            depth=config.depth,
            heads=config.heads,
            n_classes=config.n_classes,
            mlp_ratio=config.mlp_ratio,
            executor=executor,
            seed=seed,
        )
    return TinyBERT(
        vocab_size=vocab_size,
        seq_len=config.seq_len,
        dim=config.dim,
        depth=config.depth,
        heads=config.heads,
        n_classes=config.n_classes,
        mlp_ratio=config.mlp_ratio,
        executor=executor,
        seed=seed,
    )
