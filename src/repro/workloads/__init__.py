"""Transformer workload models: GEMM traces and sparse-attention support.

The accelerator simulator consumes workloads as traces of
:class:`GEMMOp` operations.  This package provides the paper's model
zoo (DeiT-T/S/B, BERT-base/large), the trace extraction, and the
block-sparse attention reformulation of Sec. VI-A.
"""

from repro.workloads.gemm import (
    ALL_MODULES,
    MODULE_ATTENTION,
    MODULE_EMBEDDING,
    MODULE_FFN,
    MODULE_HEAD,
    MODULE_PROJECTION,
    GEMMOp,
    dynamic_ops,
    filter_module,
    static_ops,
    total_flops,
    total_macs,
)
from repro.workloads.global_sparse import (
    GlobalWindowPattern,
    sparse_attention_with_globals,
)
from repro.workloads.llm import (
    DecoderConfig,
    decode_servable,
    decode_trace,
    gpt2_large,
    gpt2_medium,
    gpt2_small,
    kv_cache_bytes,
    kv_recompute_trace,
    pad_prompts,
    prefill_trace,
)
from repro.workloads.sparse import (
    WindowAttentionPattern,
    blockified_av_ops,
    blockified_qk_ops,
    cycle_savings,
    dense_attention,
    dense_cycles,
    sparse_attention,
    sparse_cycles,
)
from repro.workloads.transformer import (
    KIND_TEXT,
    KIND_VISION,
    PAPER_WORKLOADS,
    TransformerConfig,
    bert_base,
    bert_large,
    deit_base,
    deit_small,
    deit_tiny,
    gemm_trace,
    model_parameters,
    servable_model,
)

__all__ = [
    "ALL_MODULES",
    "DecoderConfig",
    "GEMMOp",
    "GlobalWindowPattern",
    "decode_servable",
    "decode_trace",
    "pad_prompts",
    "servable_model",
    "sparse_attention_with_globals",
    "gpt2_large",
    "gpt2_medium",
    "gpt2_small",
    "kv_cache_bytes",
    "kv_recompute_trace",
    "prefill_trace",
    "KIND_TEXT",
    "KIND_VISION",
    "MODULE_ATTENTION",
    "MODULE_EMBEDDING",
    "MODULE_FFN",
    "MODULE_HEAD",
    "MODULE_PROJECTION",
    "PAPER_WORKLOADS",
    "TransformerConfig",
    "WindowAttentionPattern",
    "bert_base",
    "bert_large",
    "blockified_av_ops",
    "blockified_qk_ops",
    "cycle_savings",
    "deit_base",
    "deit_small",
    "deit_tiny",
    "dense_attention",
    "dense_cycles",
    "dynamic_ops",
    "filter_module",
    "gemm_trace",
    "model_parameters",
    "sparse_attention",
    "sparse_cycles",
    "static_ops",
    "total_flops",
    "total_macs",
]
