"""BigBird-style global + window sparse attention (Sec. VI-A, extended).

The paper names BigBird's structured patterns — window attention plus a
handful of *global* tokens that attend to (and are attended by)
everything — as the sparsity DPTC can serve after blockification.  This
module extends :class:`repro.workloads.sparse.WindowAttentionPattern`
with global tokens and the corresponding dense-chunk decomposition:

* the window band is blockified exactly as before;
* global rows form one dense ``[g, n]`` chunk (they attend everywhere);
* global columns add a dense ``[n, g]`` chunk (everyone attends to them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dptc import DPTCGeometry
from repro.workloads.gemm import MODULE_ATTENTION, GEMMOp
from repro.workloads.sparse import WindowAttentionPattern, dense_cycles


@dataclass(frozen=True)
class GlobalWindowPattern:
    """Window-local attention plus ``global_tokens`` leading globals.

    The first ``g`` positions (e.g. CLS and a few sentinel tokens) are
    global: row-global (attend to every key) and column-global (every
    query attends to them).
    """

    n_tokens: int
    window: int
    block: int
    global_tokens: int = 1

    def __post_init__(self) -> None:
        if self.global_tokens < 0 or self.global_tokens >= self.n_tokens:
            raise ValueError(
                f"global_tokens must be in [0, n_tokens), got {self.global_tokens}"
            )
        # Delegate the window validation.
        object.__setattr__(
            self,
            "_window_pattern",
            WindowAttentionPattern(self.n_tokens, self.window, self.block),
        )

    @property
    def window_pattern(self) -> WindowAttentionPattern:
        return self._window_pattern

    def mask(self) -> np.ndarray:
        """Boolean ``[n, n]`` mask: window band + global rows/columns."""
        mask = self.window_pattern.mask()
        g = self.global_tokens
        if g:
            mask[:g, :] = True
            mask[:, :g] = True
        return mask

    def density(self) -> float:
        return float(np.mean(self.mask()))


def blockified_ops(
    pattern: GlobalWindowPattern, head_dim: int
) -> list[GEMMOp]:
    """Dense GEMM chunks for the QK^T of one head under the pattern."""
    ops = list(
        _window_ops(pattern.window_pattern, head_dim)
    )
    g = pattern.global_tokens
    n = pattern.n_tokens
    if g:
        ops.append(
            GEMMOp(
                "global_rows",
                m=g,
                k=head_dim,
                n=n,
                module=MODULE_ATTENTION,
                dynamic=True,
            )
        )
        ops.append(
            GEMMOp(
                "global_cols",
                m=n - g,
                k=head_dim,
                n=g,
                module=MODULE_ATTENTION,
                dynamic=True,
            )
        )
    return ops


def _window_ops(window: WindowAttentionPattern, head_dim: int) -> list[GEMMOp]:
    from repro.workloads.sparse import blockified_qk_ops

    return blockified_qk_ops(window, head_dim, name="window")


def sparse_cycles(
    pattern: GlobalWindowPattern, head_dim: int, geometry: DPTCGeometry
) -> int:
    """DPTC cycles for the blockified QK^T (and its AV mirror) chunks."""
    qk = blockified_ops(pattern, head_dim)
    total = 0
    for op in qk:
        total += geometry.cycles(op.m, op.k, op.n)  # QK^T chunk
        total += geometry.cycles(op.m, op.n, op.k)  # matching AV chunk
    return total


def cycle_savings(
    pattern: GlobalWindowPattern, head_dim: int, geometry: DPTCGeometry
) -> float:
    """Dense-over-sparse cycle ratio for one attention head."""
    return dense_cycles(pattern.n_tokens, head_dim, geometry) / sparse_cycles(
        pattern, head_dim, geometry
    )


def sparse_attention_with_globals(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern: GlobalWindowPattern,
) -> np.ndarray:
    """Reference execution of global+window attention (masked dense).

    Provided for correctness checking of the blockified mapping; the
    masked-dense form *is* the semantics the chunks must reproduce.
    """
    n, d = q.shape
    if pattern.n_tokens != n:
        raise ValueError(
            f"pattern covers {pattern.n_tokens} tokens but q has {n} rows"
        )
    scores = (q @ k.T) / math.sqrt(d)
    scores = np.where(pattern.mask(), scores, -np.inf)
    scores -= scores.max(axis=1, keepdims=True)
    weights = np.exp(scores)
    weights /= weights.sum(axis=1, keepdims=True)
    return weights @ v
