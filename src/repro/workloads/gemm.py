"""GEMM operation descriptors: the workload currency of the simulator.

Every Transformer inference decomposes into a trace of general
matrix-multiplication operations.  A :class:`GEMMOp` records one
``[m, k] x [k, n]`` product together with which module of the model it
belongs to and whether both operands are runtime activations (the
paper's *dynamic MM*, the case weight-static photonic designs cannot
serve efficiently).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

#: Module taxonomy used across the evaluation.  ``MHA`` in the paper's
#: Table V covers the two dynamic attention products (QK^T and AV).
MODULE_ATTENTION = "attention"  #: QK^T and AV (dynamic both sides)
MODULE_PROJECTION = "projection"  #: QKV / output projections (weight-static)
MODULE_FFN = "ffn"  #: feed-forward linear layers (weight-static)
MODULE_EMBEDDING = "embedding"  #: patch / token embedding
MODULE_HEAD = "head"  #: classifier / pooler

ALL_MODULES = (
    MODULE_ATTENTION,
    MODULE_PROJECTION,
    MODULE_FFN,
    MODULE_EMBEDDING,
    MODULE_HEAD,
)


@dataclass(frozen=True)
class GEMMOp:
    """One ``[m, k] x [k, n]`` matrix multiplication, possibly repeated.

    Attributes:
        name: human-readable identifier (e.g. ``"layer.qkt"``).
        m, k, n: GEMM dimensions (output is ``m x n``).
        module: one of the module constants above.
        dynamic: True when *both* operands are runtime activations
            (attention); False when one operand is a static weight.
        count: number of identical instances (e.g. heads x layers).
        k_splits: number of contraction slabs whose per-core partial
            products are digitally accumulated after photodetection
            (Sec. IV dataflow).  1 means the full contraction runs on
            one core — no cross-core accumulation.  When > 1, ``k`` is
            the *per-core* (largest) slab length and the latency/energy
            models charge the extra adder-tree cycles and partial-sum
            traffic.
    """

    name: str
    m: int
    k: int
    n: int
    module: str = MODULE_PROJECTION
    dynamic: bool = False
    count: int = 1
    k_splits: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(f"GEMM dims must be >= 1, got {(self.m, self.k, self.n)}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.k_splits < 1:
            raise ValueError(f"k_splits must be >= 1, got {self.k_splits}")
        if self.module not in ALL_MODULES:
            raise ValueError(
                f"unknown module {self.module!r}; expected one of {ALL_MODULES}"
            )

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations across all instances."""
        return self.m * self.k * self.n * self.count

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def output_elements(self) -> int:
        return self.m * self.n * self.count

    @property
    def operand_a_elements(self) -> int:
        return self.m * self.k * self.count

    @property
    def operand_b_elements(self) -> int:
        return self.k * self.n * self.count

    @property
    def accumulation_adds(self) -> int:
        """Digital adds merging the ``k_splits`` partial products.

        Reducing ``k_splits`` partials to one output takes
        ``k_splits - 1`` adds per output element; zero when the
        contraction is unsplit.
        """
        return (self.k_splits - 1) * self.m * self.n * self.count

    @property
    def static_weight_elements(self) -> int:
        """Weight parameters touched (zero for dynamic attention ops).

        Weights are shared across the ``count`` instances only when the
        instances come from different tokens of the same layer; here each
        counted instance is a distinct layer/head, so weights scale with
        ``count``.
        """
        return 0 if self.dynamic else self.k * self.n * self.count

    def single(self) -> "GEMMOp":
        """This op with ``count`` collapsed to one instance."""
        return replace(self, count=1)


def total_macs(ops: Iterable[GEMMOp]) -> int:
    """Total MACs of a GEMM trace."""
    return sum(op.macs for op in ops)


def total_flops(ops: Iterable[GEMMOp]) -> int:
    """Total FLOPs of a GEMM trace."""
    return sum(op.flops for op in ops)


def filter_module(ops: Iterable[GEMMOp], *modules: str) -> list[GEMMOp]:
    """Ops belonging to any of the given modules."""
    wanted = set(modules)
    unknown = wanted - set(ALL_MODULES)
    if unknown:
        raise ValueError(f"unknown modules: {sorted(unknown)}")
    return [op for op in ops if op.module in wanted]


def dynamic_ops(ops: Iterable[GEMMOp]) -> list[GEMMOp]:
    """Ops where both operands are runtime activations (attention)."""
    return [op for op in ops if op.dynamic]


def static_ops(ops: Iterable[GEMMOp]) -> list[GEMMOp]:
    """Ops with one static weight operand."""
    return [op for op in ops if not op.dynamic]
