"""Regenerate EXPERIMENTS.md: paper-reported vs measured for every result.

Run with::

    python -m repro.analysis.report [--skip-accuracy] [--output PATH]

The accuracy section trains two small reference models (~1 minute on a
laptop CPU); ``--skip-accuracy`` regenerates only the architecture
results (a few seconds).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis import accuracy as acc
from repro.analysis import experiments as exp
from repro.analysis.tables import render_markdown_table


def _section(title: str, body: str) -> str:
    return f"\n## {title}\n\n{body}\n"


def architecture_sections() -> list[str]:
    sections = []

    from repro.analysis.scorecard import run_scorecard

    scorecard_rows = [result.as_row() for result in run_scorecard()]
    sections.append(
        _section(
            "Reproduction scorecard",
            "Every headline claim, checked programmatically "
            "(`repro-lt verify`).\n\n"
            + render_markdown_table(scorecard_rows),
        )
    )

    fig3 = exp.fig3_dispersion()
    sections.append(
        _section(
            "Fig. 3 — WDM dispersion of the DDot design point",
            f"Paper: max kappa deviation ~1.8 %, max phase deviation ~0.28 deg "
            f"over 25 channels.\n\nMeasured: max kappa deviation "
            f"**{fig3['max_kappa_deviation_pct']:.2f} %**, max phase deviation "
            f"**{fig3['max_phase_deviation_deg']:.3f} deg**.",
        )
    )

    eq10 = exp.wavelength_scaling_summary()
    sections.append(
        _section(
            "Eq. 10 — FSR-limited wavelength scaling",
            f"Paper: window 1527.88-1572.76 nm, up to 112 wavelengths.\n\n"
            f"Measured: window {eq10['lambda_min_nm']:.2f}-"
            f"{eq10['lambda_max_nm']:.2f} nm, "
            f"**{eq10['max_wavelengths']} wavelengths**.",
        )
    )

    sections.append(
        _section(
            "Table IV — configurations",
            "Paper: LT-B 60.3 mm^2, LT-L 112.82 mm^2.\n\n"
            + render_markdown_table(exp.table4_configs()),
        )
    )

    sections.append(
        _section(
            "Fig. 7 — area breakdown",
            "Paper: photonic core ~20 %, memory ~25 %, DAC ~25 %, rest <30 %.\n\n"
            + render_markdown_table(exp.fig7_area_breakdown()),
        )
    )

    sections.append(
        _section(
            "Fig. 8 — power breakdown",
            "Paper: LT-B 14.75 W (4-bit) / 50.94 W (8-bit); "
            "LT-L 28.06 W / 95.92 W; 8-bit DACs >50 % of power; laser "
            "0.77 W -> 12.3 W.\n\n"
            + render_markdown_table(exp.fig8_power_breakdown()),
        )
    )

    sections.append(
        _section(
            "Fig. 9 — single-core scaling",
            "Paper: area 5.9 -> 49.3 mm^2, power 1.1 -> 17 W, latency "
            "47 -> 106.4 ps for core sizes 8 -> 32.\n\n"
            + render_markdown_table(exp.fig9_core_scaling()),
        )
    )

    sections.append(
        _section(
            "Fig. 10 — performance/efficiency scaling (optical part)",
            "Paper: TOPS, TOPS/W, TOPS/mm^2 increase with core size; "
            "TOPS/W/mm^2 decreases (ADC/DAC bottleneck).\n\n"
            + render_markdown_table(exp.fig10_efficiency_scaling()),
        )
    )

    fig11 = exp.fig11_energy_comparison()
    fig11_rows = [
        {"workload": workload, **row}
        for workload, rows in fig11.items()
        for row in rows
    ]
    sections.append(
        _section(
            "Fig. 11 — energy vs prior PTCs (no arch-level opts)",
            "Paper: attention MRR = 2.62x LT-crossbar-B; linear MRR = 2.40x, "
            "MZI = 3.54x.\n\n"
            + render_markdown_table(
                fig11_rows,
                columns=["workload", "design", "normalized_total", "laser",
                         "op1-mod", "op1-dac", "op2-mod", "op2-dac", "det",
                         "adc", "data-movement", "static"],
            ),
        )
    )

    fig12 = exp.fig12_variant_ablation()
    fig12_rows = [
        {"workload": workload, **row}
        for workload, rows in fig12.items()
        for row in rows
    ]
    sections.append(
        _section(
            "Fig. 12 — LT variant ablation",
            "Paper (attention): MRR 5.05, LT-broadcast-B 5.69, "
            "LT-crossbar-B 1.91, LT-B 1. Paper (linear): 4.47 / 5.92 / 1.87 / 1."
            "\n\n"
            + render_markdown_table(
                fig12_rows,
                columns=["workload", "design", "normalized_total", "laser",
                         "op1-mod", "op1-dac", "op2-mod", "op2-dac", "det",
                         "adc", "data-movement", "static"],
            ),
        )
    )

    for bits in (4, 8):
        ratios = exp.table5_average_ratios(bits)
        paper = (
            "Paper 4-bit average ratios: MZI 8.01x / 677.56x / 5426x; "
            "MRR 4.03x / 12.85x / 51.79x; LT w/o opt 1.80x."
            if bits == 4
            else "Paper 8-bit average ratios: MZI 32.46x / 675.67x / 21944x; "
            "MRR 2.67x / 12.81x / 34.25x; LT w/o opt 1.61x."
        )
        ratio_text = (
            f"Measured: MZI {ratios['mzi_energy']:.2f}x energy / "
            f"{ratios['mzi_latency']:.0f}x latency / {ratios['mzi_edp']:.0f}x EDP; "
            f"MRR {ratios['mrr_energy']:.2f}x / {ratios['mrr_latency']:.1f}x / "
            f"{ratios['mrr_edp']:.1f}x; LT w/o opt "
            f"{ratios['lt_no_opt_energy']:.2f}x."
        )
        sections.append(
            _section(
                f"Table V — photonic accelerator comparison ({bits}-bit)",
                paper
                + "\n\n"
                + ratio_text
                + "\n\n"
                + render_markdown_table(exp.table5_photonic_comparison(bits)),
            )
        )

    sections.append(
        _section(
            "Fig. 13 — cross-platform comparison",
            "Paper: lowest energy (>300x vs CPU, ~6.6x vs GPU, ~18x vs Edge "
            "TPU, ~20x vs FPGA DSAs) and highest FPS on every workload; "
            "2-3 orders of magnitude lower EDP.\n\n"
            + render_markdown_table(exp.fig13_cross_platform()),
        )
    )

    sections.append(
        _section(
            "Fig. 16 / Sec. VI-A — block-sparse attention on DPTC",
            "Window-local attention blockified into dense chunks; savings "
            "grow as the window narrows.\n\n"
            + render_markdown_table(exp.fig16_sparse_attention()),
        )
    )
    sections.extend(extension_sections())
    return sections


def extension_sections() -> list[str]:
    from repro.analysis.llm import analyze_decode
    from repro.arch import lt_base, pipeline_report
    from repro.core import DPTCGeometry, dispersion_error_reduction
    from repro.workloads import deit_tiny, gpt2_small

    sections = []

    decode_rows = []
    for context in (128, 512, 2048):
        analysis = analyze_decode(lt_base(8), gpt2_small(), context)
        decode_rows.append(
            {
                "context": context,
                "ai_flops_per_byte": analysis.arithmetic_intensity,
                "memory_bound": analysis.memory_bound,
                "compute_util_pct": 100 * analysis.compute_utilization,
            }
        )
    sections.append(
        _section(
            "Sec. VI-B — LLM decode roofline (extension)",
            "Paper (discussion): autoregressive decode is memory-bound and "
            "under-utilises the photonic compute.\n\n"
            + render_markdown_table(decode_rows),
        )
    )

    plain, calibrated = dispersion_error_reduction(DPTCGeometry())
    sections.append(
        _section(
            "Dispersion calibration (extension)",
            "Paper Sec. V-E: 'more advanced noise-mitigation techniques can "
            "be applied'.  Inverting the deterministic Eq. 9 terms reduces "
            f"the dispersion-only matmul error from **{plain:.2e}** to "
            f"**{calibrated:.2e}**.",
        )
    )

    report = pipeline_report(deit_tiny(), lt_base(4))
    sections.append(
        _section(
            "Photonic/digital pipelining (extension)",
            "Paper: deep pipelining 'can be employed to further improve the "
            "system performance'.  On DeiT-T the non-GEMM digital work "
            f"({report.digital_time * 1e3:.3g} ms) hides behind the photonic "
            f"GEMMs ({report.gemm_time * 1e3:.3g} ms); pipelining speeds up "
            f"sequential execution by **{report.speedup:.2f}x** and validates "
            "Table V's GEMM-only latency accounting.",
        )
    )
    return sections


def accuracy_sections() -> list[str]:
    sections = []

    fig6 = acc.fig6_ddot_error()
    sections.append(
        _section(
            "Fig. 6 — circuit-level DDot validation",
            "Paper: mean relative error 2.6 % (4-bit) and 3.4 % (8-bit) for "
            "random length-12 dot products (input noise 0.03, phase noise "
            "2 deg, dispersion on).\n\n" + render_markdown_table(fig6),
        )
    )

    fig14 = acc.fig14_wavelength_robustness()
    sections.append(
        _section(
            "Fig. 14 — dispersion robustness (accuracy vs wavelengths)",
            "Paper: <0.5 % accuracy drop up to 26 wavelengths, <1 % vs GPU "
            "reference. Substituted workloads: synthetic vision/token tasks "
            "(see DESIGN.md).\n\n" + render_markdown_table(fig14),
        )
    )

    fig15 = acc.fig15_noise_robustness()
    sections.append(
        _section(
            "Fig. 15 — encoding-noise robustness",
            "Paper: <0.5 % accuracy degradation across magnitude noise "
            "0.02-0.08 and phase noise 1-7 deg.\n\n"
            + render_markdown_table(fig15),
        )
    )
    return sections


HEADER = """# EXPERIMENTS — paper-reported vs measured

Generated by `python -m repro.analysis.report`.  Absolute numbers come
from this repository's behavioural models (device parameters from the
paper's Table III); the reproduction targets the paper's *shape* — who
wins, by what factor, where crossovers fall.  Substitutions (datasets,
simulators, hardware) are documented in DESIGN.md.
"""


def generate(output: Path, skip_accuracy: bool = False) -> None:
    sections = architecture_sections()
    if not skip_accuracy:
        sections.extend(accuracy_sections())
    output.write_text(HEADER + "".join(sections))
    print(f"wrote {output} ({output.stat().st_size} bytes)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    )
    parser.add_argument("--skip-accuracy", action="store_true")
    args = parser.parse_args()
    generate(args.output, skip_accuracy=args.skip_accuracy)


if __name__ == "__main__":
    main()
