"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, Mapping


def format_value(value) -> str:
    """Compact human-readable formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row-dicts as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines) + "\n"


def render_markdown_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(empty)\n"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(row.get(col, "")) for col in columns) + " |"
        )
    return "\n".join(lines) + "\n"
