"""Experiment runners for the architecture evaluation (one per figure/table).

Every function regenerates the data behind one table or figure of the
paper's evaluation section and returns render-ready row dictionaries
(see :mod:`repro.analysis.tables`).  Accuracy experiments that require
trained models live in :mod:`repro.analysis.accuracy`.
"""

from __future__ import annotations

import numpy as np

from repro.arch import (
    LighteningTransformer,
    LTEnergyModel,
    area_breakdown,
    core_path_latency,
    lt_base,
    lt_broadcast_base,
    lt_crossbar_base,
    lt_large,
    power_breakdown,
    single_core,
    single_core_area_breakdown,
    single_core_power_breakdown,
)
from repro.baselines import (
    MRRAccelerator,
    MZIAccelerator,
    all_platforms,
)
from repro.core import DPTCGeometry
from repro.core.dispersion import dispersion_profile
from repro.optics import WDMGrid
from repro.units import MJ, MM2, MS, NM, PS
from repro.workloads import (
    MODULE_ATTENTION,
    MODULE_FFN,
    PAPER_WORKLOADS,
    GEMMOp,
    WindowAttentionPattern,
    cycle_savings,
    deit_base,
    deit_tiny,
    dense_cycles,
    filter_module,
    gemm_trace,
    sparse_cycles,
)

#: The Fig. 11/12 example workloads: all QK^T products of DeiT-T and the
#: first FFN linear layer of every DeiT-T block.
ATTENTION_EXAMPLE = GEMMOp(
    "deit_t_qkt", 197, 64, 197, module=MODULE_ATTENTION, dynamic=True, count=36
)
LINEAR_EXAMPLE = GEMMOp("deit_t_ffn1", 197, 192, 768, module=MODULE_FFN, count=12)


def fig3_dispersion(n_channels: int = 25) -> dict:
    """Fig. 3: kappa(lambda) and phi(lambda) over the DWDM comb."""
    grid = WDMGrid(n_channels)
    profile = dispersion_profile(grid)
    rows = [
        {
            "wavelength_nm": wavelength / NM,
            "kappa": kappa,
            "phase_deg": np.degrees(phase),
        }
        for wavelength, kappa, phase in zip(
            grid.wavelengths, profile.kappa, profile.phase
        )
    ]
    return {
        "rows": rows,
        "max_kappa_deviation_pct": 100 * profile.max_kappa_deviation(),
        "max_phase_deviation_deg": profile.max_phase_deviation_deg(),
    }


def table4_configs() -> list[dict]:
    """Table IV: LT-B / LT-L configurations and total areas."""
    rows = []
    for config in (lt_base(), lt_large()):
        rows.append(
            {
                "name": config.name,
                "Nt": config.n_tiles,
                "Nc": config.cores_per_tile,
                "Nh": config.geometry.n_h,
                "Nv": config.geometry.n_v,
                "Nlambda": config.geometry.n_lambda,
                "global_sram_MB": config.global_sram_bytes / (1024 * 1024),
                "area_mm2": area_breakdown(config).total_mm2,
                "peak_tops": config.peak_ops / 1e12,
            }
        )
    return rows


def fig7_area_breakdown() -> list[dict]:
    """Fig. 7: per-category area of LT-B and LT-L."""
    rows = []
    for config in (lt_base(), lt_large()):
        breakdown = area_breakdown(config)
        for category, area in breakdown.as_mm2().items():
            rows.append(
                {
                    "config": config.name,
                    "category": category,
                    "area_mm2": area,
                    "share_pct": 100 * breakdown.fraction(category),
                }
            )
    return rows


def fig8_power_breakdown() -> list[dict]:
    """Fig. 8: per-category power at 4-bit and 8-bit precision."""
    rows = []
    for base in (lt_base, lt_large):
        for bits in (4, 8):
            config = base(bits)
            breakdown = power_breakdown(config)
            for category, power in breakdown.by_category.items():
                rows.append(
                    {
                        "config": config.name,
                        "bits": bits,
                        "category": category,
                        "power_w": power,
                        "share_pct": 100 * breakdown.fraction(category),
                    }
                )
    return rows


def fig9_core_scaling(
    sizes: tuple[int, ...] = (8, 12, 14, 16, 18, 20, 22, 24, 32),
) -> list[dict]:
    """Fig. 9: single-core area / power / path latency vs core size."""
    rows = []
    for size in sizes:
        config = single_core(size)
        latency = core_path_latency(size)
        rows.append(
            {
                "core_size": size,
                "area_mm2": single_core_area_breakdown(config).total_mm2,
                "power_w": single_core_power_breakdown(config).total,
                "latency_ps": latency.total_ps,
                "optics_ps": latency.optics / PS,
                "eo_oe_ps": latency.eo_oe / PS,
            }
        )
    return rows


def fig10_efficiency_scaling(
    sizes: tuple[int, ...] = (8, 16, 24, 32, 40, 48, 56),
) -> list[dict]:
    """Fig. 10: TOPS, TOPS/W, TOPS/mm^2, TOPS/W/mm^2 vs core size.

    TOPS/W and TOPS/mm^2 use the optical computing part only (ADC/DAC
    excluded, as the paper's caption states); the per-unit-area energy
    efficiency uses the full core so the converter bottleneck appears
    (the decrease the paper attributes to ADCs and DACs).
    """
    rows = []
    for size in sizes:
        config = single_core(size)
        tops = config.peak_ops / 1e12
        area = single_core_area_breakdown(config)
        power = single_core_power_breakdown(config)
        optical_power = sum(
            power.by_category[cat] for cat in ("modulation", "detection", "laser")
        )
        optical_area = sum(
            area.by_category[cat]
            for cat in ("modulation", "photonic_core", "laser")
        )
        rows.append(
            {
                "core_size": size,
                "tops": tops,
                "tops_per_w": tops / optical_power,
                "tops_per_mm2": tops / (optical_area / MM2),
                "tops_per_w_mm2": tops / power.total / (area.total / MM2),
            }
        )
    return rows


def _normalized_breakdowns(
    accelerators: list[tuple[str, object]], op: GEMMOp
) -> list[dict]:
    """Energy breakdowns normalised to the last accelerator's total."""
    reports = []
    for name, accelerator in accelerators:
        if isinstance(accelerator, LTEnergyModel):
            reports.append((name, accelerator.gemm_energy(op)))
        else:
            reports.append((name, accelerator.op_energy(op)))
    reference = reports[-1][1].total
    rows = []
    for name, report in reports:
        row = {"design": name, "normalized_total": report.total / reference}
        row.update(
            {cat: val / reference for cat, val in report.normalized_to(reference).items()}
        )
        rows.append(row)
    return rows


def fig11_energy_comparison() -> dict[str, list[dict]]:
    """Fig. 11: LT-crossbar-B vs MRR (and MZI on linear) breakdowns."""
    crossbar = LTEnergyModel(lt_crossbar_base())
    mrr = MRRAccelerator()
    mzi = MZIAccelerator()
    return {
        "attention": _normalized_breakdowns(
            [("MRR", mrr), ("LT-crossbar-B", crossbar)], ATTENTION_EXAMPLE
        ),
        "linear": _normalized_breakdowns(
            [("MZI", mzi), ("MRR", mrr), ("LT-crossbar-B", crossbar)],
            LINEAR_EXAMPLE,
        ),
    }


def fig12_variant_ablation() -> dict[str, list[dict]]:
    """Fig. 12: MRR vs the three LT variants on both example workloads."""
    designs = [
        ("MRR", MRRAccelerator()),
        ("LT-broadcast-B", LTEnergyModel(lt_broadcast_base())),
        ("LT-crossbar-B", LTEnergyModel(lt_crossbar_base())),
        ("LT-B", LTEnergyModel(lt_base())),
    ]
    return {
        "attention": _normalized_breakdowns(designs, ATTENTION_EXAMPLE),
        "linear": _normalized_breakdowns(designs, LINEAR_EXAMPLE),
    }


def table5_photonic_comparison(bits: int = 4) -> list[dict]:
    """Table V: energy / latency / EDP per module and accelerator."""
    lt = LighteningTransformer(lt_base(bits))
    lt_no_opt = LTEnergyModel(lt_crossbar_base(bits))
    mrr = MRRAccelerator(bits=bits)
    mzi = MZIAccelerator(bits=bits)
    rows = []
    for model in (deit_tiny(), deit_base()):
        trace = gemm_trace(model)
        modules = {
            "MHA": filter_module(trace, MODULE_ATTENTION),
            "FFN": filter_module(trace, MODULE_FFN),
            "All": trace,
        }
        for module_name, ops in modules.items():
            lt_run = lt.run(ops)
            mrr_run = mrr.run(ops)
            mzi_run = mzi.run(ops)
            rows.append(
                {
                    "model": model.name,
                    "module": module_name,
                    "bits": bits,
                    "mzi_energy_mj": mzi_run.energy_joules / MJ,
                    "mzi_latency_ms": mzi_run.latency / MS,
                    "mzi_edp": mzi_run.edp / (MJ * MS),
                    "mrr_energy_mj": mrr_run.energy_joules / MJ,
                    "mrr_latency_ms": mrr_run.latency / MS,
                    "mrr_edp": mrr_run.edp / (MJ * MS),
                    "lt_energy_no_opt_mj": lt_no_opt.workload_energy(ops).total / MJ,
                    "lt_energy_mj": lt_run.energy_joules / MJ,
                    "lt_latency_ms": lt_run.latency / MS,
                    "lt_edp": lt_run.edp / (MJ * MS),
                }
            )
    return rows


def table5_average_ratios(bits: int = 4) -> dict[str, float]:
    """The 'Average Ratio' row of Table V (baseline / LT-B)."""
    rows = table5_photonic_comparison(bits)
    all_rows = [row for row in rows if row["module"] == "All"]

    def mean_ratio(metric: str) -> float:
        return float(
            np.mean([row[f"{metric}"] for row in all_rows])
        )

    mzi_energy = np.mean([r["mzi_energy_mj"] / r["lt_energy_mj"] for r in all_rows])
    mzi_latency = np.mean(
        [r["mzi_latency_ms"] / r["lt_latency_ms"] for r in all_rows]
    )
    mzi_edp = np.mean([r["mzi_edp"] / r["lt_edp"] for r in all_rows])
    mrr_energy = np.mean([r["mrr_energy_mj"] / r["lt_energy_mj"] for r in all_rows])
    mrr_latency = np.mean(
        [r["mrr_latency_ms"] / r["lt_latency_ms"] for r in all_rows]
    )
    mrr_edp = np.mean([r["mrr_edp"] / r["lt_edp"] for r in all_rows])
    no_opt = np.mean(
        [r["lt_energy_no_opt_mj"] / r["lt_energy_mj"] for r in all_rows]
    )
    return {
        "mzi_energy": float(mzi_energy),
        "mzi_latency": float(mzi_latency),
        "mzi_edp": float(mzi_edp),
        "mrr_energy": float(mrr_energy),
        "mrr_latency": float(mrr_latency),
        "mrr_edp": float(mrr_edp),
        "lt_no_opt_energy": float(no_opt),
    }


def fig13_cross_platform(bits: tuple[int, ...] = (4, 8)) -> list[dict]:
    """Fig. 13: energy (mJ) and FPS per workload across platforms."""
    rows = []
    for workload_name, factory in PAPER_WORKLOADS.items():
        workload = factory()
        trace = gemm_trace(workload)
        for platform in all_platforms():
            rows.append(
                {
                    "workload": workload_name,
                    "platform": platform.name,
                    "bits": "amp",
                    "energy_mj": platform.energy(trace) / MJ,
                    "fps": platform.fps(trace),
                }
            )
        for precision in bits:
            for config_factory in (lt_base, lt_large):
                accelerator = LighteningTransformer(config_factory(precision))
                result = accelerator.run(trace)
                rows.append(
                    {
                        "workload": workload_name,
                        "platform": accelerator.config.name,
                        "bits": precision,
                        "energy_mj": result.energy_joules / MJ,
                        "fps": result.fps,
                    }
                )
    return rows


def fig16_sparse_attention(
    n_tokens: int = 196,
    head_dim: int = 64,
    windows: tuple[int, ...] = (3, 7, 13, 25, 49),
    block: int = 12,
) -> list[dict]:
    """Sec. VI-A: blockified window attention savings on DPTC."""
    geometry = DPTCGeometry()
    rows = []
    dense = dense_cycles(n_tokens, head_dim, geometry)
    for window in windows:
        pattern = WindowAttentionPattern(n_tokens, window, block)
        sparse = sparse_cycles(pattern, head_dim, geometry)
        rows.append(
            {
                "window": window,
                "density_pct": 100 * pattern.density(),
                "dense_cycles": dense,
                "sparse_cycles": sparse,
                "cycle_savings": cycle_savings(pattern, head_dim, geometry),
            }
        )
    return rows


def wavelength_scaling_summary() -> dict:
    """Sec. V-B wavelength scaling: the Eq. 10 FSR-limited channel count."""
    from repro.optics import fsr_wavelength_window, max_channels
    from repro.units import THZ

    config = lt_base()
    fsr = config.library.microdisk.fsr
    lower, upper = fsr_wavelength_window(fsr)
    return {
        "fsr_thz": fsr / THZ,
        "lambda_min_nm": lower / NM,
        "lambda_max_nm": upper / NM,
        "max_wavelengths": max_channels(fsr),
    }
