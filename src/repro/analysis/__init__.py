"""Experiment runners and report generation for every table and figure."""

from repro.analysis.accuracy import (
    fig6_ddot_error,
    fig14_wavelength_robustness,
    fig15_noise_robustness,
    reference_bert,
    reference_vit,
)
from repro.analysis.llm import (
    RooflineAnalysis,
    analyze_decode,
    batch_to_saturate,
)
from repro.analysis.scorecard import (
    Claim,
    ClaimResult,
    all_pass,
    default_claims,
    run_scorecard,
)
from repro.analysis.sensitivity import (
    SensitivityResult,
    sensitivity,
    sensitivity_sweep,
)
from repro.analysis.experiments import (
    ATTENTION_EXAMPLE,
    LINEAR_EXAMPLE,
    fig3_dispersion,
    fig7_area_breakdown,
    fig8_power_breakdown,
    fig9_core_scaling,
    fig10_efficiency_scaling,
    fig11_energy_comparison,
    fig12_variant_ablation,
    fig13_cross_platform,
    fig16_sparse_attention,
    table4_configs,
    table5_average_ratios,
    table5_photonic_comparison,
    wavelength_scaling_summary,
)
from repro.analysis.tables import format_value, render_markdown_table, render_table

__all__ = [
    "ATTENTION_EXAMPLE",
    "Claim",
    "ClaimResult",
    "LINEAR_EXAMPLE",
    "RooflineAnalysis",
    "all_pass",
    "default_claims",
    "run_scorecard",
    "SensitivityResult",
    "analyze_decode",
    "batch_to_saturate",
    "fig3_dispersion",
    "sensitivity",
    "sensitivity_sweep",
    "fig6_ddot_error",
    "fig7_area_breakdown",
    "fig8_power_breakdown",
    "fig9_core_scaling",
    "fig10_efficiency_scaling",
    "fig11_energy_comparison",
    "fig12_variant_ablation",
    "fig13_cross_platform",
    "fig14_wavelength_robustness",
    "fig15_noise_robustness",
    "fig16_sparse_attention",
    "format_value",
    "reference_bert",
    "reference_vit",
    "render_markdown_table",
    "render_table",
    "table4_configs",
    "table5_average_ratios",
    "table5_photonic_comparison",
    "wavelength_scaling_summary",
]
