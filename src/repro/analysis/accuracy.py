"""Accuracy experiments: Fig. 6 (circuit validation), Fig. 14/15 (robustness).

These runners train small reference models (cached per process) with
noise-aware training and then sweep the analog non-idealities, exactly
mirroring the paper's methodology:

* the *digital reference* ("GPU" in Figs. 14/15) is the same quantized
  checkpoint evaluated without analog noise;
* each sweep point re-evaluates the checkpoint with the corresponding
  noise/dispersion setting injected into every matrix product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import DPTCGeometry, EncodingNoise, NoiseModel, SystematicNoise
from repro.neural import (
    Dataset,
    PhotonicExecutor,
    QuantConfig,
    TinyBERT,
    TinyViT,
    evaluate,
    striped_image_dataset,
    token_order_dataset,
    train_classifier,
)
from repro.neural.quantization import quantize_array
from repro.optics import DDotCircuit, WDMGrid


# -- Fig. 6: circuit-level dot-product validation ---------------------------

def fig6_ddot_error(
    n_trials: int = 1500,
    length: int = 12,
    bit_widths: tuple[int, ...] = (4, 8),
    magnitude_std: float = 0.03,
    phase_std_deg: float = 2.0,
    seed: int = 0,
) -> list[dict]:
    """Circuit-simulated dot-product error of random length-12 products.

    Reproduces the paper's INTERCONNECT validation: inputs are quantized
    to the target precision, encoding noise and WDM dispersion applied,
    and the relative error against the quantized ideal value measured.
    Trials whose ideal magnitude is tiny are excluded (relative error is
    undefined at zero), matching the 'one random dot-product' setup.
    """
    grid = WDMGrid(length)
    circuit = DDotCircuit(grid, include_dispersion=True)
    rng = np.random.default_rng(seed)
    rows = []
    for bits in bit_widths:
        errors = []
        while len(errors) < n_trials:
            x = quantize_array(rng.uniform(-1, 1, length), bits)
            y = quantize_array(rng.uniform(-1, 1, length), bits)
            ideal = float(x @ y)
            if abs(ideal) < 0.5:
                continue
            measured = circuit.dot_product(
                x,
                y,
                magnitude_std=magnitude_std,
                phase_std=np.radians(phase_std_deg),
                rng=rng,
            )
            errors.append(abs(measured - ideal) / abs(ideal))
        errors = np.asarray(errors)
        rows.append(
            {
                "bits": bits,
                "mean_error_pct": 100 * float(errors.mean()),
                "median_error_pct": 100 * float(np.median(errors)),
                "p95_error_pct": 100 * float(np.percentile(errors, 95)),
            }
        )
    return rows


# -- Reference model training (cached) ----------------------------------------

@dataclass
class ReferenceModel:
    """A trained checkpoint with its held-out test set."""

    model: object
    test_set: Dataset
    digital_accuracy: float  #: noise-free quantized accuracy ("GPU")


_CACHE: dict[str, ReferenceModel] = {}


def _noise_aware_executor(seed: int) -> PhotonicExecutor:
    return PhotonicExecutor.paper_default(QuantConfig.int4(), seed=seed)


def reference_vit(seed: int = 0, epochs: int = 12) -> ReferenceModel:
    """Noise-aware-trained TinyViT on the striped-image task (cached)."""
    key = f"vit-{seed}-{epochs}"
    if key not in _CACHE:
        # 6 well-separated orientations under heavy pixel noise: the
        # checkpoint lands around 90 % so the sweeps have headroom to
        # show degradation (and its absence at the paper's noise levels).
        data = striped_image_dataset(n_samples=320, n_classes=6, noise=0.9, seed=seed)
        train, test = data.split(0.75)
        model = TinyViT(
            n_classes=6, depth=2, executor=_noise_aware_executor(seed), seed=seed
        )
        train_classifier(model, train, epochs=epochs, lr=3e-3, seed=seed)
        model.set_executor(PhotonicExecutor.digital_reference(QuantConfig.int4()))
        _CACHE[key] = ReferenceModel(model, test, evaluate(model, test))
    return _CACHE[key]


def reference_bert(seed: int = 0, epochs: int = 12) -> ReferenceModel:
    """Noise-aware-trained TinyBERT on the token-order task (cached)."""
    key = f"bert-{seed}-{epochs}"
    if key not in _CACHE:
        data = token_order_dataset(n_samples=320, seq_len=12, seed=seed)
        train, test = data.split(0.75)
        model = TinyBERT(
            seq_len=12, depth=2, executor=_noise_aware_executor(seed), seed=seed
        )
        train_classifier(model, train, epochs=epochs, lr=3e-3, seed=seed)
        model.set_executor(PhotonicExecutor.digital_reference(QuantConfig.int4()))
        _CACHE[key] = ReferenceModel(model, test, evaluate(model, test))
    return _CACHE[key]


def _noisy_accuracy(
    reference: ReferenceModel,
    n_lambda: int,
    magnitude_std: float,
    phase_std_deg: float,
    systematic_std: float,
    seed: int,
) -> float:
    noise = NoiseModel(
        encoding=EncodingNoise(magnitude_std, phase_std_deg),
        systematic=SystematicNoise(systematic_std),
        include_dispersion=True,
    )
    executor = PhotonicExecutor(
        geometry=DPTCGeometry(12, 12, n_lambda),
        noise=noise,
        quant=QuantConfig.int4(),
        rng=np.random.default_rng(seed),
    )
    reference.model.set_executor(executor)
    accuracy = evaluate(reference.model, reference.test_set)
    reference.model.set_executor(
        PhotonicExecutor.digital_reference(QuantConfig.int4())
    )
    return accuracy


# -- Fig. 14: wavelength (dispersion) robustness -------------------------------

def fig14_wavelength_robustness(
    wavelengths: tuple[int, ...] = (6, 10, 14, 18, 22, 26),
    magnitude_std: float = 0.03,
    phase_std_deg: float = 2.0,
    seed: int = 0,
) -> list[dict]:
    """Accuracy vs WDM channel count for the ViT and BERT checkpoints."""
    rows = []
    for kind, reference in (
        ("vit", reference_vit(seed)),
        ("bert", reference_bert(seed)),
    ):
        for n_lambda in wavelengths:
            noisy = _noisy_accuracy(
                reference,
                n_lambda,
                magnitude_std,
                phase_std_deg,
                systematic_std=0.05,
                seed=seed + n_lambda,
            )
            rows.append(
                {
                    "model": kind,
                    "n_wavelengths": n_lambda,
                    "digital_accuracy": reference.digital_accuracy,
                    "photonic_accuracy": noisy,
                    "accuracy_drop": reference.digital_accuracy - noisy,
                }
            )
    return rows


# -- Fig. 15: encoding-noise robustness ----------------------------------------

def fig15_noise_robustness(
    magnitude_stds: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.15, 0.30),
    phase_stds_deg: tuple[float, ...] = (1.0, 3.0, 5.0, 7.0, 12.0, 20.0),
    seed: int = 0,
) -> list[dict]:
    """Accuracy vs magnitude / phase encoding noise for the ViT.

    The paper sweeps magnitude noise to 0.08 and phase noise to 7 deg;
    the two extra points per sweep extend past the paper's range to
    locate where accuracy finally collapses (an extension study).
    """
    reference = reference_vit(seed)
    rows = []
    for magnitude_std in magnitude_stds:
        noisy = _noisy_accuracy(
            reference,
            n_lambda=12,
            magnitude_std=magnitude_std,
            phase_std_deg=2.0,
            systematic_std=0.05,
            seed=seed + int(1000 * magnitude_std),
        )
        rows.append(
            {
                "sweep": "magnitude",
                "value": magnitude_std,
                "digital_accuracy": reference.digital_accuracy,
                "photonic_accuracy": noisy,
                "accuracy_drop": reference.digital_accuracy - noisy,
            }
        )
    for phase_std in phase_stds_deg:
        noisy = _noisy_accuracy(
            reference,
            n_lambda=12,
            magnitude_std=0.03,
            phase_std_deg=phase_std,
            systematic_std=0.05,
            seed=seed + int(10 * phase_std),
        )
        rows.append(
            {
                "sweep": "phase",
                "value": phase_std,
                "digital_accuracy": reference.digital_accuracy,
                "photonic_accuracy": noisy,
                "accuracy_drop": reference.digital_accuracy - noisy,
            }
        )
    return rows
