"""Roofline analysis of LLM decode on the accelerator (Sec. VI-B).

Classifies the autoregressive-decode phase of a decoder-only model as
compute- or memory-bound on a given Lightening-Transformer
configuration, quantifying the paper's discussion: token-by-token
generation has ~2 FLOPs of work per weight/KV byte, so the photonic
cores idle on HBM traffic unless requests are batched aggressively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.arch.latency import workload_cycles
from repro.arch.memory import HBMModel
from repro.workloads.gemm import total_flops
from repro.workloads.llm import DecoderConfig, decode_trace, kv_cache_bytes


@dataclass(frozen=True)
class RooflineAnalysis:
    """Compute-vs-memory characterization of one workload phase."""

    flops: float
    hbm_bytes: float
    compute_time: float  #: s at the accelerator's effective throughput
    memory_time: float  #: s at the HBM bandwidth

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per HBM byte."""
        return self.flops / self.hbm_bytes if self.hbm_bytes else math.inf

    @property
    def memory_bound(self) -> bool:
        return self.memory_time > self.compute_time

    @property
    def latency(self) -> float:
        """Phase latency under perfect compute/transfer overlap."""
        return max(self.compute_time, self.memory_time)

    @property
    def compute_utilization(self) -> float:
        """Fraction of the compute time the photonic cores stay busy."""
        return self.compute_time / self.latency


def analyze_decode(
    accelerator: AcceleratorConfig,
    config: DecoderConfig,
    context_len: int,
    batch: int = 1,
    hbm: HBMModel | None = None,
) -> RooflineAnalysis:
    """Roofline analysis of one decode step on an LT configuration.

    HBM traffic covers the model weights (streamed once per step — the
    batch amortises them) and the KV cache read for every request.
    """
    hbm = hbm if hbm is not None else HBMModel()
    trace = decode_trace(config, context_len, batch)
    # Weights stream once per decode step; the batch shares them (its
    # token vectors ride the same GEMM), so weight bytes are per-step.
    weight_bytes = sum(
        op.static_weight_elements for op in trace if not op.dynamic
    ) * accelerator.bits / 8
    cache_bytes = kv_cache_bytes(config, context_len, accelerator.bits, batch)
    hbm_bytes = weight_bytes + cache_bytes
    cycles = workload_cycles(accelerator, trace)
    return RooflineAnalysis(
        flops=float(total_flops(trace)),
        hbm_bytes=float(hbm_bytes),
        compute_time=cycles * accelerator.cycle_time,
        memory_time=hbm.transfer_time(hbm_bytes),
    )


def batch_to_saturate(
    accelerator: AcceleratorConfig,
    config: DecoderConfig,
    context_len: int,
    max_batch: int = 256,
) -> int:
    """Smallest batch at which decode becomes compute-bound.

    Returns ``max_batch`` if memory still dominates at that size (the
    paper's point: LLM decode under-utilises photonic compute without
    aggressive batching).
    """
    batch = 1
    while batch < max_batch:
        if not analyze_decode(accelerator, config, context_len, batch).memory_bound:
            return batch
        batch *= 2
    return max_batch
