"""Device-parameter sensitivity of the system design point.

An extension study the behavioural models make cheap: perturb one
Table III device parameter at a time and measure the change in
system power and per-inference energy.  Quantifies the paper's
qualitative claims — the design is DAC-dominated at high precision,
laser-sensitive through the loss budget, and nearly insensitive to the
passive components.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.arch.config import AcceleratorConfig, lt_base
from repro.arch.energy import LTEnergyModel
from repro.arch.power import power_breakdown
from repro.devices.library import DeviceLibrary
from repro.workloads.gemm import GEMMOp
from repro.workloads.transformer import deit_tiny, gemm_trace


@dataclass(frozen=True)
class SensitivityResult:
    """Effect of scaling one device parameter by ``factor``."""

    parameter: str
    factor: float
    power_ratio: float  #: perturbed / baseline chip power
    energy_ratio: float  #: perturbed / baseline inference energy

    @property
    def power_elasticity(self) -> float:
        """d(log power) / d(log parameter), finite-difference estimate."""
        import math

        return math.log(self.power_ratio) / math.log(self.factor)


def _scale_device(
    library: DeviceLibrary, parameter: str, factor: float
) -> DeviceLibrary:
    """Return a library with one device power/loss scaled by ``factor``."""
    scalers: dict[str, Callable[[DeviceLibrary, float], DeviceLibrary]] = {
        "dac_power": lambda lib, f: dataclasses.replace(
            lib, dac=dataclasses.replace(lib.dac, power=lib.dac.power * f)
        ),
        "adc_power": lambda lib, f: dataclasses.replace(
            lib, adc=dataclasses.replace(lib.adc, power=lib.adc.power * f)
        ),
        "mzm_power": lambda lib, f: dataclasses.replace(
            lib,
            mzm=dataclasses.replace(lib.mzm, tuning_power=lib.mzm.tuning_power * f),
        ),
        "mzm_loss": lambda lib, f: dataclasses.replace(
            lib,
            mzm=dataclasses.replace(
                lib.mzm, insertion_loss_db=lib.mzm.insertion_loss_db * f
            ),
        ),
        "pd_power": lambda lib, f: dataclasses.replace(
            lib,
            photodetector=dataclasses.replace(
                lib.photodetector, power=lib.photodetector.power * f
            ),
        ),
        "microdisk_locking": lambda lib, f: dataclasses.replace(
            lib,
            microdisk=dataclasses.replace(
                lib.microdisk, locking_power=lib.microdisk.locking_power * f
            ),
        ),
        "wall_plug_efficiency": lambda lib, f: dataclasses.replace(
            lib,
            laser=dataclasses.replace(
                lib.laser,
                wall_plug_efficiency=min(1.0, lib.laser.wall_plug_efficiency * f),
            ),
        ),
        "coupler_loss": lambda lib, f: dataclasses.replace(
            lib,
            directional_coupler=dataclasses.replace(
                lib.directional_coupler,
                insertion_loss_db=lib.directional_coupler.insertion_loss_db * f,
            ),
        ),
    }
    if parameter not in scalers:
        raise KeyError(
            f"unknown parameter {parameter!r}; expected one of {sorted(scalers)}"
        )
    return scalers[parameter](library, factor)


PARAMETERS = (
    "dac_power",
    "adc_power",
    "mzm_power",
    "mzm_loss",
    "pd_power",
    "microdisk_locking",
    "wall_plug_efficiency",
    "coupler_loss",
)


def sensitivity(
    parameter: str,
    factor: float = 2.0,
    config: AcceleratorConfig | None = None,
    workload: list[GEMMOp] | None = None,
) -> SensitivityResult:
    """Scale one device parameter and measure the system impact."""
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    base = config if config is not None else lt_base(4)
    ops = workload if workload is not None else gemm_trace(deit_tiny())

    perturbed = dataclasses.replace(
        base, library=_scale_device(base.library, parameter, factor)
    )
    base_power = power_breakdown(base).total
    new_power = power_breakdown(perturbed).total
    base_energy = LTEnergyModel(base).workload_energy(ops).total
    new_energy = LTEnergyModel(perturbed).workload_energy(ops).total
    return SensitivityResult(
        parameter=parameter,
        factor=factor,
        power_ratio=new_power / base_power,
        energy_ratio=new_energy / base_energy,
    )


def sensitivity_sweep(
    factor: float = 2.0,
    config: AcceleratorConfig | None = None,
) -> list[SensitivityResult]:
    """Sensitivity of every swept parameter, most impactful first."""
    results = [sensitivity(parameter, factor, config) for parameter in PARAMETERS]
    return sorted(results, key=lambda r: r.power_ratio, reverse=True)
