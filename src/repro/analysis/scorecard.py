"""Reproduction scorecard: every headline claim, checked programmatically.

Each :class:`Claim` records one quantitative statement from the paper,
the measured value from this repository's models, and a tolerance for
the comparison.  :func:`run_scorecard` evaluates them all — the single
entry point for "does this reproduction still hold?" (also exposed as
``repro-lt verify``).

Claims are grouped by how they are compared:

* ``exact``   — dimensionless/structural results that must match;
* ``relative``— absolute numbers expected within a tolerance band;
* ``bound``   — ordering/threshold claims (who wins, by at least X).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Claim:
    """One checkable claim from the paper."""

    name: str
    paper_value: float
    measure: Callable[[], float]
    kind: str = "relative"  #: "exact" | "relative" | "lower-bound"
    tolerance: float = 0.10  #: relative tolerance for "relative" kind

    def evaluate(self) -> "ClaimResult":
        measured = float(self.measure())
        if self.kind == "exact":
            passed = measured == self.paper_value
        elif self.kind == "relative":
            passed = (
                abs(measured - self.paper_value)
                <= self.tolerance * abs(self.paper_value)
            )
        elif self.kind == "lower-bound":
            passed = measured >= self.paper_value
        else:
            raise ValueError(f"unknown claim kind {self.kind!r}")
        return ClaimResult(self, measured, passed)


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    measured: float
    passed: bool

    def as_row(self) -> dict:
        return {
            "claim": self.claim.name,
            "paper": self.claim.paper_value,
            "measured": self.measured,
            "kind": self.claim.kind,
            "pass": self.passed,
        }


def _lt_b_area() -> float:
    from repro.arch import area_breakdown, lt_base

    return area_breakdown(lt_base()).total_mm2


def _lt_l_area() -> float:
    from repro.arch import area_breakdown, lt_large

    return area_breakdown(lt_large()).total_mm2


def _lt_b_power(bits: int) -> float:
    from repro.arch import lt_base, power_breakdown

    return power_breakdown(lt_base(bits)).total


def _deit_tiny_latency_ms() -> float:
    from repro.arch import lt_base, workload_latency
    from repro.units import MS
    from repro.workloads import deit_tiny, gemm_trace

    return workload_latency(lt_base(4), gemm_trace(deit_tiny())) / MS


def _mrr_energy_ratio() -> float:
    from repro.analysis.experiments import table5_average_ratios

    return table5_average_ratios(4)["mrr_energy"]


def _mrr_latency_ratio() -> float:
    from repro.analysis.experiments import table5_average_ratios

    return table5_average_ratios(4)["mrr_latency"]


def _mzi_edp_ratio() -> float:
    from repro.analysis.experiments import table5_average_ratios

    return table5_average_ratios(4)["mzi_edp"]


def _max_wavelengths() -> float:
    from repro.optics import max_channels
    from repro.units import THZ

    return float(max_channels(5.6 * THZ))


def _kappa_deviation_pct() -> float:
    from repro.analysis.experiments import fig3_dispersion

    return fig3_dispersion()["max_kappa_deviation_pct"]


def _phase_deviation_deg() -> float:
    from repro.analysis.experiments import fig3_dispersion

    return fig3_dispersion()["max_phase_deviation_deg"]


def _encoding_saving() -> float:
    from repro.core import DPTCGeometry

    return DPTCGeometry(12, 12, 12).encoding_saving()


def _laser_power_ratio_8b_over_4b() -> float:
    from repro.arch import laser_power, lt_base

    return laser_power(lt_base(8)) / laser_power(lt_base(4))


def _cpu_energy_ratio() -> float:
    from repro.arch import LighteningTransformer, lt_base
    from repro.baselines import cpu_i7_9750h
    from repro.workloads import deit_tiny, gemm_trace

    trace = gemm_trace(deit_tiny())
    lt = LighteningTransformer(lt_base(4)).run(trace)
    return cpu_i7_9750h().energy(trace) / lt.energy_joules


def default_claims() -> list[Claim]:
    """The paper's headline claims in checkable form."""
    return [
        Claim("Eq.10: FSR-limited wavelength count", 112, _max_wavelengths, "exact"),
        Claim("Eq.6: DPTC encoding-cost saving (12x12 core)", 12.0, _encoding_saving, "exact"),
        Claim("Fig.3: max kappa deviation (%)", 1.8, _kappa_deviation_pct, tolerance=0.10),
        Claim("Fig.3: max phase deviation (deg)", 0.28, _phase_deviation_deg, tolerance=0.10),
        Claim("Table IV: LT-B area (mm^2)", 60.3, _lt_b_area, tolerance=0.05),
        Claim("Table IV: LT-L area (mm^2)", 112.82, _lt_l_area, tolerance=0.05),
        Claim("Fig.8: LT-B 4-bit power (W)", 14.75, lambda: _lt_b_power(4), tolerance=0.05),
        Claim("Fig.8: LT-B 8-bit power (W)", 50.94, lambda: _lt_b_power(8), tolerance=0.08),
        Claim(
            "Fig.8: laser power 8-bit/4-bit ratio", 16.0,
            _laser_power_ratio_8b_over_4b, tolerance=0.02,
        ),
        Claim("Table V: DeiT-T latency on LT-B (ms)", 1.94e-2, _deit_tiny_latency_ms, tolerance=0.03),
        Claim("Table V: MRR energy ratio (avg)", 4.03, _mrr_energy_ratio, tolerance=0.40),
        Claim("Table V: MRR latency ratio (avg)", 12.85, _mrr_latency_ratio, tolerance=0.35),
        Claim("Table V: MZI EDP gap (>=1000x)", 1e3, _mzi_edp_ratio, "lower-bound"),
        Claim("Fig.13: CPU energy ratio (>=150x)", 150.0, _cpu_energy_ratio, "lower-bound"),
    ]


def run_scorecard(claims: list[Claim] | None = None) -> list[ClaimResult]:
    """Evaluate all claims; returns the per-claim results."""
    claims = claims if claims is not None else default_claims()
    return [claim.evaluate() for claim in claims]


def all_pass(results: list[ClaimResult] | None = None) -> bool:
    """True when every scorecard claim holds."""
    results = results if results is not None else run_scorecard()
    return all(result.passed for result in results)
