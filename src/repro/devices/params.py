"""Parameter records for the photonic and electronic devices of Table III.

Each dataclass captures the published operating point of one component.
Powers are in watts, areas in square metres, times in seconds, and losses
in decibels, matching the conventions of :mod:`repro.units`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DACParams:
    """Digital-to-analog converter operating point (Caragiulo et al.)."""

    bits: int  #: resolution at the published operating point
    power: float  #: W at the published sample rate
    sample_rate: float  #: Hz
    area: float  #: m^2

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"DAC bits must be positive, got {self.bits}")
        if self.power <= 0 or self.sample_rate <= 0 or self.area <= 0:
            raise ValueError("DAC power, sample rate, and area must be positive")


@dataclass(frozen=True)
class ADCParams:
    """Analog-to-digital converter operating point (Liu et al.)."""

    bits: int
    power: float  #: W at the published sample rate
    sample_rate: float  #: Hz
    area: float  #: m^2

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"ADC bits must be positive, got {self.bits}")
        if self.power <= 0 or self.sample_rate <= 0 or self.area <= 0:
            raise ValueError("ADC power, sample rate, and area must be positive")


@dataclass(frozen=True)
class TIAParams:
    """Transimpedance amplifier."""

    power: float  #: W
    area: float  #: m^2


@dataclass(frozen=True)
class MicrodiskParams:
    """Microdisk modulator/filter used for the WDM MUX/DEMUX."""

    locking_power: float  #: W per disk to hold resonance
    insertion_loss_db: float
    area: float  #: m^2
    fsr: float  #: free spectral range, Hz


@dataclass(frozen=True)
class MicroringParams:
    """Microring resonator (used by the MRR-bank baseline)."""

    tuning_power: float  #: W dynamic tuning
    locking_power: float  #: W static locking per ring (at 0.5 FSR detuning)
    insertion_loss_db: float
    area: float  #: m^2


@dataclass(frozen=True)
class MZMParams:
    """Mach-Zehnder modulator used for high-speed operand encoding."""

    tuning_power: float  #: W dynamic tuning
    insertion_loss_db: float
    area: float  #: m^2


@dataclass(frozen=True)
class DirectionalCouplerParams:
    """Passive 2x2 directional coupler at the heart of each DDot."""

    insertion_loss_db: float
    area: float  #: m^2


@dataclass(frozen=True)
class PhaseShifterParams:
    """MEMS phase shifter (passive hold, slow reconfiguration)."""

    insertion_loss_db: float
    area: float  #: m^2
    response_time: float  #: s, reconfiguration latency


@dataclass(frozen=True)
class PhotodetectorParams:
    """Waveguide photodiode with its sensitivity floor."""

    power: float  #: W receiver power
    sensitivity_dbm: float  #: minimum detectable optical power
    area: float  #: m^2


@dataclass(frozen=True)
class YBranchParams:
    """Broadband 50/50 Y-branch splitter used in broadcast trees."""

    insertion_loss_db: float
    area: float  #: m^2


@dataclass(frozen=True)
class WaveguideCrossingParams:
    """Low-loss waveguide crossing inside the crossbar."""

    insertion_loss_db: float
    area: float  #: m^2


@dataclass(frozen=True)
class MicroCombParams:
    """Kerr micro-comb providing the multi-wavelength source."""

    area: float  #: m^2


@dataclass(frozen=True)
class LaserParams:
    """On-chip laser with its electrical-to-optical conversion efficiency."""

    wall_plug_efficiency: float  #: optical W out per electrical W in
    area: float  #: m^2

    def __post_init__(self) -> None:
        if not 0.0 < self.wall_plug_efficiency <= 1.0:
            raise ValueError(
                "wall-plug efficiency must be in (0, 1], got "
                f"{self.wall_plug_efficiency}"
            )
