"""Laser power from an explicit optical loss budget.

The paper sets the laser power "to meet the minimum power requirement of
the photodetector considering system loss, scaled based on the precision
requirement and wall-plug efficiency" (Sec. V-A).  This module makes that
calculation explicit:

1. build the insertion-loss budget of the worst-case optical path from a
   modulator input to a DDot photodetector (:func:`ddot_path_loss`),
2. back-propagate the photodetector sensitivity floor through that loss,
3. scale by ``2**(bits - 4)`` — each extra output bit halves the
   tolerable relative noise and therefore doubles the required optical
   power (the 4-bit point is the paper's default operating point),
4. divide by the laser wall-plug efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.devices.library import DeviceLibrary
from repro.units import db_to_linear, dbm_to_watts

#: Output precision at which the sensitivity floor is specified.
REFERENCE_BITS = 4


@dataclass
class LossBudget:
    """An itemised optical insertion-loss budget along one path."""

    entries: list[tuple[str, float]] = field(default_factory=list)

    def add(self, name: str, loss_db: float) -> None:
        """Append one contribution (decibels, non-negative)."""
        if loss_db < 0:
            raise ValueError(f"loss for {name!r} must be >= 0 dB, got {loss_db}")
        self.entries.append((name, loss_db))

    @property
    def total_db(self) -> float:
        """Total path loss in decibels."""
        return sum(loss for _, loss in self.entries)

    @property
    def transmission(self) -> float:
        """Linear power transmission of the path (0, 1]."""
        return 1.0 / db_to_linear(self.total_db)


def splitter_tree_loss_db(fanout: int, library: DeviceLibrary) -> float:
    """Loss of a 1-to-``fanout`` broadcast tree.

    The ideal 1/N power split contributes ``10*log10(N)`` dB; each of the
    ``ceil(log2(N))`` Y-branch stages adds its excess insertion loss.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if fanout == 1:
        return 0.0
    ideal = 10.0 * math.log10(fanout)
    stages = math.ceil(math.log2(fanout))
    return ideal + stages * library.y_branch.insertion_loss_db


def ddot_path_loss(
    library: DeviceLibrary,
    broadcast_fanout: int,
    crossings: int,
) -> LossBudget:
    """Loss budget from the WDM modulation unit to a DDot photodetector.

    Args:
        library: device operating points.
        broadcast_fanout: number of DDot rows/columns the modulated WDM
            signal is broadcast to (``Nv`` or ``Nh``).
        crossings: waveguide crossings traversed inside the crossbar on
            the worst-case path.
    """
    budget = LossBudget()
    budget.add("wdm_demux", library.microdisk.insertion_loss_db)
    budget.add("mzm", library.mzm.insertion_loss_db)
    budget.add("wdm_mux", library.microdisk.insertion_loss_db)
    budget.add("broadcast_tree", splitter_tree_loss_db(broadcast_fanout, library))
    budget.add("crossings", crossings * library.crossing.insertion_loss_db)
    budget.add("ddot_phase_shifter", library.phase_shifter.insertion_loss_db)
    budget.add("ddot_coupler", library.directional_coupler.insertion_loss_db)
    return budget


def required_laser_power(
    n_channels: int,
    loss_db: float,
    bits: int,
    library: DeviceLibrary,
) -> float:
    """Electrical laser power (W) to light ``n_channels`` WDM channels.

    Each channel must deliver the photodetector sensitivity floor after
    ``loss_db`` of path loss, scaled by ``2**(bits - REFERENCE_BITS)``
    for the output-precision requirement.
    """
    if n_channels < 0:
        raise ValueError(f"n_channels must be >= 0, got {n_channels}")
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    floor = dbm_to_watts(library.photodetector.sensitivity_dbm)
    per_channel = floor * db_to_linear(loss_db) * 2.0 ** (bits - REFERENCE_BITS)
    return n_channels * per_channel / library.laser.wall_plug_efficiency
