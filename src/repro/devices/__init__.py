"""Device parameter library and component-level scaling models.

This package captures the paper's Table III: published operating points
for every photonic and electronic component in the accelerator, plus the
scaling laws (converter bit-width/frequency scaling, laser loss budgets)
used to move from those operating points to the system design point.
"""

from repro.devices.laser import (
    LossBudget,
    ddot_path_loss,
    required_laser_power,
    splitter_tree_loss_db,
)
from repro.devices.library import DeviceLibrary, default_library
from repro.devices.params import (
    ADCParams,
    DACParams,
    DirectionalCouplerParams,
    LaserParams,
    MicroCombParams,
    MicrodiskParams,
    MicroringParams,
    MZMParams,
    PhaseShifterParams,
    PhotodetectorParams,
    TIAParams,
    WaveguideCrossingParams,
    YBranchParams,
)
from repro.devices.scaling import (
    adc_energy_per_conversion,
    adc_power,
    adc_walden_fom,
    dac_energy_per_conversion,
    dac_power,
)

__all__ = [
    "ADCParams",
    "DACParams",
    "DeviceLibrary",
    "DirectionalCouplerParams",
    "LaserParams",
    "LossBudget",
    "MicroCombParams",
    "MicrodiskParams",
    "MicroringParams",
    "MZMParams",
    "PhaseShifterParams",
    "PhotodetectorParams",
    "TIAParams",
    "WaveguideCrossingParams",
    "YBranchParams",
    "adc_energy_per_conversion",
    "adc_power",
    "adc_walden_fom",
    "dac_energy_per_conversion",
    "dac_power",
    "ddot_path_loss",
    "default_library",
    "required_laser_power",
    "splitter_tree_loss_db",
]
