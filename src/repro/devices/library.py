"""The default device library: the operating points of the paper's Table III.

:func:`default_library` returns a :class:`DeviceLibrary` loaded with the
published component parameters.  Library instances are immutable; derived
studies (e.g. a lower-loss coupler) build a modified copy with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GHZ, MW, THZ, UM2, US

from repro.devices.params import (
    ADCParams,
    DACParams,
    DirectionalCouplerParams,
    LaserParams,
    MicroCombParams,
    MicrodiskParams,
    MicroringParams,
    MZMParams,
    PhaseShifterParams,
    PhotodetectorParams,
    TIAParams,
    WaveguideCrossingParams,
    YBranchParams,
)


@dataclass(frozen=True)
class DeviceLibrary:
    """A consistent set of device operating points used by all models."""

    dac: DACParams = field(
        default_factory=lambda: DACParams(
            bits=8, power=50 * MW, sample_rate=14 * GHZ, area=11_000 * UM2
        )
    )
    adc: ADCParams = field(
        default_factory=lambda: ADCParams(
            bits=8, power=14.8 * MW, sample_rate=10 * GHZ, area=2_850 * UM2
        )
    )
    tia: TIAParams = field(
        default_factory=lambda: TIAParams(power=3 * MW, area=50 * UM2)
    )
    microdisk: MicrodiskParams = field(
        default_factory=lambda: MicrodiskParams(
            locking_power=0.275 * MW,
            insertion_loss_db=0.93,
            area=4.8 * 4.8 * UM2,
            fsr=5.6 * THZ,
        )
    )
    microring: MicroringParams = field(
        default_factory=lambda: MicroringParams(
            tuning_power=0.21 * MW,
            locking_power=1.2 * MW,
            insertion_loss_db=0.95,
            area=9.66 * 9.66 * UM2,
        )
    )
    mzm: MZMParams = field(
        default_factory=lambda: MZMParams(
            tuning_power=2.25 * MW, insertion_loss_db=1.2, area=260 * 20 * UM2
        )
    )
    directional_coupler: DirectionalCouplerParams = field(
        default_factory=lambda: DirectionalCouplerParams(
            insertion_loss_db=0.33, area=5.25 * 2.4 * UM2
        )
    )
    phase_shifter: PhaseShifterParams = field(
        default_factory=lambda: PhaseShifterParams(
            insertion_loss_db=0.33, area=100 * 45 * UM2, response_time=2 * US
        )
    )
    photodetector: PhotodetectorParams = field(
        default_factory=lambda: PhotodetectorParams(
            power=1.1 * MW, sensitivity_dbm=-25.0, area=4 * 10 * UM2
        )
    )
    y_branch: YBranchParams = field(
        default_factory=lambda: YBranchParams(
            insertion_loss_db=0.3, area=1.8 * 1.3 * UM2
        )
    )
    crossing: WaveguideCrossingParams = field(
        # Not tabulated in the paper; a typical low-loss SOI crossing.
        default_factory=lambda: WaveguideCrossingParams(
            insertion_loss_db=0.05, area=8 * 8 * UM2
        )
    )
    micro_comb: MicroCombParams = field(
        default_factory=lambda: MicroCombParams(area=1_184 * 1_184 * UM2)
    )
    laser: LaserParams = field(
        default_factory=lambda: LaserParams(
            wall_plug_efficiency=0.2, area=400 * 300 * UM2
        )
    )


def default_library() -> DeviceLibrary:
    """Return the device library with the paper's Table III parameters."""
    return DeviceLibrary()
