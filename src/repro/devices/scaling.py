"""Bit-width and sample-rate scaling of data-converter power.

The paper adopts published 8-bit converter operating points (Table III)
and, following Kim et al., rescales them to the precision and clock of
the photonic computing units.  Two standard models are used:

* **ADC** — Walden figure of merit: power is proportional to
  ``2**bits * sample_rate``.  The figure of merit (J per conversion
  step) is extracted from the reference design and held constant.
* **DAC** — switched-capacitor DAC: power is proportional to
  ``(2**bits + bits) * sample_rate``; the ``2**bits`` term models the
  capacitor-array charging and the linear term the digital buffering.
"""

from __future__ import annotations

from repro.devices.params import ADCParams, DACParams


def adc_walden_fom(ref: ADCParams) -> float:
    """Energy per conversion step (J) of the reference ADC design."""
    return ref.power / (2.0**ref.bits * ref.sample_rate)


def adc_power(bits: int, sample_rate: float, ref: ADCParams) -> float:
    """Power (W) of an ADC at ``bits`` resolution and ``sample_rate``.

    Scales the reference design with a constant Walden figure of merit.
    """
    _check(bits, sample_rate)
    return adc_walden_fom(ref) * 2.0**bits * sample_rate


def adc_energy_per_conversion(bits: int, ref: ADCParams) -> float:
    """Energy (J) of a single analog-to-digital conversion."""
    _check(bits, 1.0)
    return adc_walden_fom(ref) * 2.0**bits


def dac_power(bits: int, sample_rate: float, ref: DACParams) -> float:
    """Power (W) of a DAC at ``bits`` resolution and ``sample_rate``."""
    _check(bits, sample_rate)
    scale = _dac_complexity(bits) / _dac_complexity(ref.bits)
    return ref.power * scale * (sample_rate / ref.sample_rate)


def dac_energy_per_conversion(bits: int, sample_rate: float, ref: DACParams) -> float:
    """Energy (J) of a single digital-to-analog conversion."""
    return dac_power(bits, sample_rate, ref) / sample_rate


def _dac_complexity(bits: int) -> float:
    return 2.0**bits + bits


def _check(bits: int, sample_rate: float) -> None:
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    if sample_rate <= 0:
        raise ValueError(f"sample rate must be positive, got {sample_rate}")
