"""Table IV — LT-B / LT-L configurations, areas, and wavelength scaling.

Paper: LT-B (4 tiles x 2 cores) is 60.3 mm^2; LT-L (8 tiles) 112.82 mm^2.
The microdisk FSR (Eq. 10) limits the comb to 112 wavelengths.
"""

import pytest

from repro.analysis import render_table, table4_configs, wavelength_scaling_summary


def bench_table4_configs(benchmark):
    rows = benchmark.pedantic(table4_configs, rounds=3, iterations=1)

    by_name = {row["name"]: row for row in rows}
    assert by_name["LT-B"]["area_mm2"] == pytest.approx(60.3, rel=0.05)
    assert by_name["LT-L"]["area_mm2"] == pytest.approx(112.82, rel=0.05)

    for row in rows:
        benchmark.extra_info[f"{row['name']}_area_mm2"] = row["area_mm2"]
    print()
    print(render_table(rows, title="Table IV: configurations"))


def bench_eq10_wavelength_scaling(benchmark):
    summary = benchmark.pedantic(wavelength_scaling_summary, rounds=3, iterations=1)

    assert summary["max_wavelengths"] == 112
    assert summary["lambda_min_nm"] == pytest.approx(1527.88, abs=0.01)

    benchmark.extra_info.update(summary)
    print()
    print(render_table([summary], title="Eq. 10: FSR-limited wavelength scaling"))
