"""Fig. 16 / Sec. VI-A — block-sparse attention reformulated for DPTC.

Window-local attention is blockified into dense chunks; the cycle
savings over dense attention grow as the window narrows, and the
blockified execution is numerically identical to masked dense attention.
"""

import numpy as np

from repro.analysis import fig16_sparse_attention, render_table
from repro.workloads import (
    WindowAttentionPattern,
    dense_attention,
    sparse_attention,
)


def bench_fig16_sparse_attention(benchmark):
    rows = benchmark.pedantic(fig16_sparse_attention, rounds=1, iterations=1)

    savings = [row["cycle_savings"] for row in rows]
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 3.0  # narrow windows save plenty

    # Functional correctness of the blockified path.
    rng = np.random.default_rng(0)
    q, k, v = (rng.normal(size=(48, 16)) for _ in range(3))
    pattern = WindowAttentionPattern(48, window=7, block=12)
    assert np.allclose(
        sparse_attention(q, k, v, pattern),
        dense_attention(q, k, v, mask=pattern.mask()),
        atol=1e-10,
    )

    benchmark.extra_info["max_cycle_savings"] = savings[0]
    print()
    print(render_table(rows, title="Fig. 16: window attention on DPTC"))
