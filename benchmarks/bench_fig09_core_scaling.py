"""Fig. 9 — single-DPTC area / power / path-latency scaling with core size.

Paper: area 5.9 -> 49.3 mm^2, power 1.1 -> 17 W, latency 47 -> 106.4 ps
as the core grows from 8 to 32; optics latency grows linearly while the
E-O/O-E term stays constant.
"""

import pytest

from repro.analysis import fig9_core_scaling, render_table


def bench_fig9_core_scaling(benchmark):
    rows = benchmark.pedantic(fig9_core_scaling, rounds=1, iterations=1)

    by_size = {row["core_size"]: row for row in rows}
    assert by_size[32]["area_mm2"] == pytest.approx(49.3, rel=0.08)
    assert by_size[32]["power_w"] == pytest.approx(17.0, rel=0.12)
    assert by_size[8]["latency_ps"] == pytest.approx(47.0, rel=0.05)
    assert by_size[32]["latency_ps"] == pytest.approx(106.4, rel=0.05)
    # E-O/O-E constant, optics linear.
    assert by_size[8]["eo_oe_ps"] == by_size[32]["eo_oe_ps"]

    benchmark.extra_info["area_32_mm2"] = by_size[32]["area_mm2"]
    benchmark.extra_info["power_32_w"] = by_size[32]["power_w"]
    print()
    print(render_table(rows, title="Fig. 9: single-core scaling"))
