"""Cluster-wide shared cache tier: hit-rate, prefix-sharing, bit gates.

Everything runs under a :class:`SimulatedClock`, so every number is a
pure function of the seeds.  Sections, each with a hard gate:

* **Fleet memo hit rate** — a wave workload of repeated prompts.  With
  per-replica *private* memo caches, ``round_robin`` routing forfeits
  hits (repeats land on replicas that never computed them) while
  ``session_affinity`` keeps them; with the shared
  :class:`~repro.cluster.store.SharedCacheTier`, ``round_robin``'s
  fleet hit rate must recover to >= 0.9x the affinity baseline
  (``--report-only`` relaxes this floor; the strict
  shared-beats-private ordering always applies).
* **Prefix sharing** — N decode sessions forked from one registered
  system prompt.  Shared :class:`~repro.serving.cache.PrefixChain`
  pages are charged once fleet-wide, so total fleet KV bytes
  (sum of replica pools + tier chains) must be *strictly* below the
  unshared baseline for N >= 2 forks, and must equal
  :func:`repro.workloads.llm.shared_kv_cache_bytes` exactly.  After
  releasing every session the chain refcount must be zero and every
  pool empty — no orphaned or double-freed pages.
* **Bit equivalence** — every routing policy (including
  ``cache_aware``), shared and unshared prefix modes alike, must
  produce per-session outputs bit-identical to a single sequential
  engine decoding each session alone.

Emits a ``BENCH_cache_tier.json`` artifact (``--out PATH`` to relocate).
"""

import json
import os

import numpy as np

from repro.cluster import ClusterConfig, ServingCluster
from repro.serving import (
    EngineConfig,
    IterationCost,
    ServingEngine,
    SimulatedClock,
    VisionServable,
    decode_payload,
    mixed_decode_trace,
    run_decode_trace,
)
from repro.workloads.llm import (
    DecoderConfig,
    decode_servable,
    kv_cache_bytes,
    shared_kv_cache_bytes,
)
from repro.workloads.transformer import TransformerConfig, servable_model

WEIGHT_SEED = 1
PAYLOAD_SEED = 7
TRACE_SEED = 42

#: Memo-wave workload: K distinct prompts replayed over W waves on R
#: replicas.  K % R != 0, so round_robin walks each prompt across every
#: replica and private caches only warm up after R waves.
MEMO_PROMPTS = 5
MEMO_WAVES = 6
MEMO_REPLICAS = 4

#: Hit-rate recovery floor (relaxed by --report-only).
MIN_HIT_RECOVERY = 0.9

#: Prefix-sharing decode trace.
PREFIX_ID = "sys-prompt"
PROMPT_LEN = 6
BLOCK_SIZE = 2
PREFIX_SESSIONS = 8
PREFIX_REPLICAS = 3
COST = IterationCost(base_s=200e-6, per_request_s=50e-6)

POLICIES = ("round_robin", "least_outstanding", "session_affinity", "cache_aware")


# -- section 1: fleet memo hit rate ------------------------------------------
def _vision_config() -> TransformerConfig:
    return TransformerConfig(
        "bench-tier-vit", depth=1, dim=32, heads=2, seq_len=17,
        mlp_ratio=2.0, n_classes=4, patch_size=4, image_size=16,
        in_channels=1,
    )


def _memo_payloads() -> list[np.ndarray]:
    rng = np.random.default_rng(PAYLOAD_SEED)
    return [rng.normal(size=(16, 16)) for _ in range(MEMO_PROMPTS)]


def _memo_engine_config() -> EngineConfig:
    return EngineConfig(max_wait_us=0.0, queue_depth=64, seed=WEIGHT_SEED)


def _memo_cluster(policy: str, *, shared: bool) -> ServingCluster:
    engine = _memo_engine_config()
    config = ClusterConfig(
        replicas=MEMO_REPLICAS,
        policy=policy,
        engine=engine,
        shared_cache=shared,
        memo_bytes=1 << 20,
    )
    return ServingCluster(
        lambda replica_id: VisionServable(
            servable_model(_vision_config(), engine=engine)
        ),
        config=config,
        clock=SimulatedClock(),
    )


def _memo_reference(payloads) -> list[np.ndarray]:
    """Each prompt computed alone on a single engine — the bit oracle."""
    engine = ServingEngine(
        VisionServable(servable_model(_vision_config(), engine=_memo_engine_config())),
        config=EngineConfig(max_batch_size=1, max_wait_us=0.0),
        clock=SimulatedClock(),
    )
    with engine:
        results = []
        for payload in payloads:
            handle = engine.submit(payload)
            engine.step()
            results.append(handle.result(timeout=0))
    return results


def _run_memo_waves(cluster: ServingCluster, *, with_sessions: bool):
    """W waves of the K prompts; returns (hit_rate, all wave results)."""
    payloads = _memo_payloads()
    waves = []
    with cluster:
        for _ in range(MEMO_WAVES):
            handles = [
                cluster.submit(
                    payloads[j],
                    cache_key=f"prompt-{j}",
                    session_id=f"user-{j}" if with_sessions else None,
                )
                for j in range(MEMO_PROMPTS)
            ]
            cluster.run_until_idle()
            waves.append([handle.result(timeout=0) for handle in handles])
        hit_rate = cluster.metrics.cache_hit_rate()
    return hit_rate, waves


def memo_hit_rates() -> dict:
    reference = _memo_reference(_memo_payloads())

    def bit_equal(waves) -> bool:
        return all(
            np.array_equal(result, reference[j])
            for wave in waves
            for j, result in enumerate(wave)
        )

    affinity_rate, affinity_waves = _run_memo_waves(
        _memo_cluster("session_affinity", shared=False), with_sessions=True
    )
    rr_private_rate, rr_private_waves = _run_memo_waves(
        _memo_cluster("round_robin", shared=False), with_sessions=False
    )
    rr_shared_rate, rr_shared_waves = _run_memo_waves(
        _memo_cluster("round_robin", shared=True), with_sessions=False
    )
    return {
        "prompts": MEMO_PROMPTS,
        "waves": MEMO_WAVES,
        "replicas": MEMO_REPLICAS,
        "affinity_private_hit_rate": affinity_rate,
        "round_robin_private_hit_rate": rr_private_rate,
        "round_robin_shared_hit_rate": rr_shared_rate,
        "recovery": (
            rr_shared_rate / affinity_rate if affinity_rate else float("nan")
        ),
        "bit_identical": bool(
            bit_equal(affinity_waves)
            and bit_equal(rr_private_waves)
            and bit_equal(rr_shared_waves)
        ),
    }


# -- sections 2 + 3: prefix sharing + bit equivalence ------------------------
def _decoder() -> DecoderConfig:
    return DecoderConfig("bench-tier", depth=2, dim=16, heads=2, mlp_ratio=2.0)


def _prefix_engine_config() -> EngineConfig:
    return EngineConfig(
        max_batch_size=4,
        max_wait_us=0.0,
        queue_depth=8 * PREFIX_SESSIONS,
        scheduler="continuous",
        iteration_cost=COST,
        block_size=BLOCK_SIZE,
        seed=WEIGHT_SEED,
    )


def _prefix_specs():
    return mixed_decode_trace(
        PREFIX_SESSIONS,
        seed=TRACE_SEED,
        min_steps=2,
        max_steps=6,
        horizon_s=5e-3,
    )


def _payload_fn(config):
    return lambda i, t: decode_payload(PAYLOAD_SEED, i, t, config.dim)


def sequential_prefix_reference(config, specs) -> dict:
    """Each forked session decoded alone, prompt pre-opened — the oracle.

    Prompt tokens are zero-state K/V but still carry softmax mass, so
    the oracle must open each session at the same ``PROMPT_LEN`` the
    cluster's prefix fork gives it.
    """
    payload_fn = _payload_fn(config)
    outputs = {}
    for i, spec in enumerate(specs):
        servable = decode_servable(config, engine=_prefix_engine_config())
        engine = ServingEngine(
            servable,
            config=EngineConfig(
                max_batch_size=1, max_wait_us=0.0, queue_depth=spec.steps
            ),
            clock=SimulatedClock(),
        )
        with engine:
            servable.cache.open_session(spec.session_id, prompt_len=PROMPT_LEN)
            outs = []
            for t in range(spec.steps):
                handle = engine.submit(payload_fn(i, t), session_id=spec.session_id)
                engine.step()
                outs.append(handle.result(timeout=0))
            outputs[spec.session_id] = outs
    return outputs


def _prefix_cluster(policy: str, *, share: bool) -> ServingCluster:
    engine = _prefix_engine_config()
    config = ClusterConfig(
        replicas=PREFIX_REPLICAS,
        policy=policy,
        engine=engine,
        shared_cache=True,
        share_prefixes=share,
    )
    cluster = ServingCluster(
        lambda replica_id: decode_servable(_decoder(), engine=engine),
        config=config,
        clock=SimulatedClock(),
    )
    cluster.register_prefix(PREFIX_ID, PROMPT_LEN)
    return cluster


def _fleet_kv_bytes(cluster: ServingCluster) -> int:
    """Replica-private pool bytes + tier chain bytes (counted once)."""
    private = sum(
        replica.session_cache.pool.in_use_bytes
        for replica in cluster.replicas.values()
        if replica.alive and replica.session_cache is not None
    )
    tier = cluster.tier.shared_bytes if cluster.tier is not None else 0
    return private + tier


def _run_prefix_trace(policy: str, *, share: bool) -> dict:
    config = _decoder()
    specs = _prefix_specs()
    cluster = _prefix_cluster(policy, share=share)
    with cluster:
        result = run_decode_trace(
            cluster,
            specs,
            payload_fn=_payload_fn(config),
            release=False,  # keep sessions resident for the byte audit
            submit_kwargs=lambda i: {"prefix_id": PREFIX_ID},
        )
        fleet_bytes = _fleet_kv_bytes(cluster)
        tier_bytes = cluster.tier.shared_bytes
        refcount = cluster.tier.refcount(PREFIX_ID)
        holders = cluster.tier.replicas_holding(PREFIX_ID)
        snapshot = cluster.snapshot()
        for spec in specs:
            cluster.release_session(spec.session_id)
        released_refcount = cluster.tier.refcount(PREFIX_ID)
        released_holders = cluster.tier.replicas_holding(PREFIX_ID)
        pools_empty = all(
            replica.session_cache.pool.in_use == 0
            for replica in cluster.replicas.values()
            if replica.alive and replica.session_cache is not None
        )
    return {
        "outputs": result["outputs"],
        "specs": specs,
        "fleet_bytes": fleet_bytes,
        "tier_bytes": tier_bytes,
        "refcount": refcount,
        "holders": holders,
        "released_refcount": released_refcount,
        "released_holders": released_holders,
        "pools_empty": pools_empty,
        "shared_adoptions": snapshot["prefixes"]["shared_adoptions"],
        "private_adoptions": snapshot["prefixes"]["private_adoptions"],
        "migrations": snapshot["migrations"]["count"],
    }


def _bit_equal(outputs, reference, specs) -> bool:
    return all(
        len(outputs[s.session_id]) == len(reference[s.session_id])
        and all(
            np.array_equal(a, b)
            for a, b in zip(outputs[s.session_id], reference[s.session_id])
        )
        for s in specs
    )


def prefix_sharing(reference) -> dict:
    """Shared vs unshared fleet KV bytes, plus custody hygiene."""
    config = _decoder()
    shared = _run_prefix_trace("round_robin", share=True)
    unshared = _run_prefix_trace("round_robin", share=False)
    specs = shared["specs"]
    context_lens = [PROMPT_LEN + spec.steps for spec in specs]
    pages = lambda tokens: -(-tokens // BLOCK_SIZE)  # noqa: E731
    expected_shared = shared_kv_cache_bytes(
        config, PROMPT_LEN, context_lens, block_size=BLOCK_SIZE
    )
    expected_unshared = sum(
        kv_cache_bytes(config, pages(context) * BLOCK_SIZE)
        for context in context_lens
    )
    return {
        "sessions": len(specs),
        "prompt_len": PROMPT_LEN,
        "block_size": BLOCK_SIZE,
        "shared_fleet_bytes": shared["fleet_bytes"],
        "unshared_fleet_bytes": unshared["fleet_bytes"],
        "shared_matches_formula": shared["fleet_bytes"] == expected_shared,
        "unshared_matches_formula": unshared["fleet_bytes"] == expected_unshared,
        "savings_bytes": unshared["fleet_bytes"] - shared["fleet_bytes"],
        "chain_refcount_at_peak": shared["refcount"],
        "chain_holders_at_peak": shared["holders"],
        "shared_adoptions": shared["shared_adoptions"],
        "private_adoptions": unshared["private_adoptions"],
        "release_clean": bool(
            shared["released_refcount"] == 0
            and not shared["released_holders"]
            and shared["pools_empty"]
            and unshared["pools_empty"]
        ),
        "shared_bit_identical": _bit_equal(shared["outputs"], reference, specs),
        "unshared_bit_identical": _bit_equal(unshared["outputs"], reference, specs),
    }


def policy_equivalence(reference) -> dict:
    """Every routing policy bit-identical with shared prefix forks."""
    report = {}
    for policy in POLICIES:
        run = _run_prefix_trace(policy, share=True)
        report[policy] = {
            "bit_identical": _bit_equal(run["outputs"], reference, run["specs"]),
            "shared_adoptions": run["shared_adoptions"],
            "migrations": run["migrations"],
        }
    return report


def run(
    assert_recovery: bool = True, out_path: str = "BENCH_cache_tier.json"
) -> dict:
    memo = memo_hit_rates()
    floor = MIN_HIT_RECOVERY if assert_recovery else 0.0
    print(
        f"Fleet memo hit rate ({MEMO_PROMPTS} prompts x {MEMO_WAVES} waves, "
        f"{MEMO_REPLICAS} replicas)"
    )
    print(f"  session_affinity + private memos: {memo['affinity_private_hit_rate']:.3f}")
    print(f"  round_robin      + private memos: {memo['round_robin_private_hit_rate']:.3f}")
    print(f"  round_robin      + shared tier:   {memo['round_robin_shared_hit_rate']:.3f}")
    print(f"  recovery: {memo['recovery']:.3f} (floor {floor:.2f})")
    assert memo["bit_identical"], "memo results must be bit-identical to solo compute"
    assert (
        memo["round_robin_shared_hit_rate"] > memo["round_robin_private_hit_rate"]
    ), "the shared tier must strictly beat private per-replica memos"
    assert memo["recovery"] >= floor, (
        f"shared-tier hit-rate recovery {memo['recovery']:.3f} below the "
        f"{floor:.2f} floor"
    )

    config = _decoder()
    reference = sequential_prefix_reference(config, _prefix_specs())

    sharing = prefix_sharing(reference)
    print(
        f"\nPrefix sharing ({sharing['sessions']} sessions forked from a "
        f"{PROMPT_LEN}-token prompt, block_size={BLOCK_SIZE})"
    )
    print(
        f"  shared fleet KV bytes:   {sharing['shared_fleet_bytes']} "
        f"(formula match {sharing['shared_matches_formula']})"
    )
    print(
        f"  unshared fleet KV bytes: {sharing['unshared_fleet_bytes']} "
        f"(formula match {sharing['unshared_matches_formula']})"
    )
    print(
        f"  savings: {sharing['savings_bytes']} bytes; chain refcount at "
        f"peak {sharing['chain_refcount_at_peak']}, holders "
        f"{sharing['chain_holders_at_peak']}; release clean "
        f"{sharing['release_clean']}"
    )
    assert sharing["shared_fleet_bytes"] < sharing["unshared_fleet_bytes"], (
        "prefix sharing must strictly reduce fleet KV bytes for >= 2 forks"
    )
    assert sharing["shared_matches_formula"], (
        "shared fleet bytes must equal shared_kv_cache_bytes exactly"
    )
    assert sharing["unshared_matches_formula"], (
        "unshared fleet bytes must equal the per-session kv_cache_bytes sum"
    )
    assert sharing["chain_refcount_at_peak"] == sharing["sessions"]
    assert sharing["release_clean"], (
        "releasing every fork must zero the chain refcount and empty pools"
    )
    assert sharing["shared_bit_identical"] and sharing["unshared_bit_identical"], (
        "prefix forks must stay bit-identical to the sequential oracle"
    )

    policies = policy_equivalence(reference)
    print("\nRouting policies with shared prefix forks")
    for name, check in policies.items():
        print(
            f"  {name:18s} bit_identical={check['bit_identical']} "
            f"(adoptions={check['shared_adoptions']}, "
            f"migrations={check['migrations']})"
        )
        assert check["bit_identical"], f"policy equivalence gate failed: {name}"
        assert check["shared_adoptions"] == PREFIX_SESSIONS

    report = {
        "host_cpus": os.cpu_count() or 1,
        "memo": memo,
        "prefix_sharing": {
            k: v for k, v in sharing.items() if not k.endswith("outputs")
        },
        "policies": policies,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_cache_tier(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["recovery"] = result["memo"]["recovery"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="relax the 0.9x hit-rate recovery floor (bit equivalence, the "
        "strict shared-beats-private ordering, and the byte gates always "
        "apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_cache_tier.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_recovery=not cli.report_only, out_path=cli.out)
