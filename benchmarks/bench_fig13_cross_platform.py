"""Fig. 13 — energy and FPS across electronic platforms and LT designs.

Paper: Lightening-Transformer has the lowest energy (>300x vs CPU,
~6.6x vs GPU, ~18x vs Edge TPU, ~20x vs FPGA DSAs) and the highest
throughput on every workload (DeiT-T/S/B, BERT-base-128,
BERT-large-320), with 2-3 orders of magnitude lower EDP.
"""

from repro.analysis import fig13_cross_platform, render_table


def bench_fig13_cross_platform(benchmark):
    rows = benchmark.pedantic(fig13_cross_platform, rounds=1, iterations=1)

    workloads = {row["workload"] for row in rows}
    assert len(workloads) == 5
    for workload in workloads:
        subset = [r for r in rows if r["workload"] == workload]
        lt_energy = min(
            r["energy_mj"] for r in subset if r["platform"].startswith("LT")
        )
        electronic_energy = min(
            r["energy_mj"] for r in subset if not r["platform"].startswith("LT")
        )
        assert lt_energy < electronic_energy
        best_fps = max(subset, key=lambda r: r["fps"])
        assert best_fps["platform"].startswith("LT")

    cpu = next(
        r
        for r in rows
        if r["workload"] == "DeiT-T-224" and r["platform"].startswith("CPU")
    )
    lt4 = next(
        r
        for r in rows
        if r["workload"] == "DeiT-T-224" and r["platform"] == "LT-B" and r["bits"] == 4
    )
    assert cpu["energy_mj"] / lt4["energy_mj"] > 150  # paper: >300x

    benchmark.extra_info["cpu_over_lt_energy"] = cpu["energy_mj"] / lt4["energy_mj"]
    print()
    print(render_table(rows, title="Fig. 13: cross-platform energy (mJ) and FPS"))
