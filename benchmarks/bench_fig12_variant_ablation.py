"""Fig. 12 — ablation of the LT design features against the MRR bank.

Paper (attention QK^T): MRR 5.05x, LT-broadcast-B 5.69x,
LT-crossbar-B 1.91x, LT-B 1x.  Paper (FFN linear): 4.47 / 5.92 / 1.87 / 1.
Each feature must pay for itself: crossbar sharing over plain broadcast,
and the architecture-level optimizations over the crossbar alone.
"""

import pytest

from repro.analysis import fig12_variant_ablation, render_table


def bench_fig12_variant_ablation(benchmark):
    result = benchmark.pedantic(fig12_variant_ablation, rounds=1, iterations=1)

    for workload, rows in result.items():
        by_design = {r["design"]: r["normalized_total"] for r in rows}
        assert by_design["LT-B"] == pytest.approx(1.0)
        assert by_design["LT-crossbar-B"] > 1.2
        assert by_design["LT-broadcast-B"] > by_design["LT-crossbar-B"]
        assert by_design["MRR"] > by_design["LT-crossbar-B"]

    attention = {r["design"]: r["normalized_total"] for r in result["attention"]}
    assert attention["MRR"] == pytest.approx(5.05, rel=0.35)

    benchmark.extra_info["attention_ratios"] = attention
    print()
    for workload, rows in result.items():
        print(render_table(rows, title=f"Fig. 12 ({workload}): variant ablation"))
