"""Fig. 11 — PTC-level energy vs MRR / MZI (arch-level opts disabled).

Paper: on the DeiT-T attention workload the MRR bank costs 2.62x
LT-crossbar-B; on the first FFN linear layer MRR costs 2.40x and the
MZI array 3.54x (laser-dominated).
"""

import pytest

from repro.analysis import fig11_energy_comparison, render_table


def bench_fig11_energy_vs_baselines(benchmark):
    result = benchmark.pedantic(fig11_energy_comparison, rounds=1, iterations=1)

    attention = {r["design"]: r for r in result["attention"]}
    linear = {r["design"]: r for r in result["linear"]}

    assert attention["LT-crossbar-B"]["normalized_total"] == pytest.approx(1.0)
    assert attention["MRR"]["normalized_total"] == pytest.approx(2.62, rel=0.5)
    assert linear["MRR"]["normalized_total"] > 1.5
    assert linear["MZI"]["normalized_total"] > linear["LT-crossbar-B"][
        "normalized_total"
    ]
    # The MRR's static-operand locking is a major share on attention.
    assert attention["MRR"]["op1-mod"] / attention["MRR"]["normalized_total"] > 0.25

    benchmark.extra_info["mrr_attention_ratio"] = attention["MRR"][
        "normalized_total"
    ]
    benchmark.extra_info["mzi_linear_ratio"] = linear["MZI"]["normalized_total"]
    print()
    for workload, rows in result.items():
        print(render_table(rows, title=f"Fig. 11 ({workload}): normalized energy"))
