"""Continuous (iteration-level) decode batching: equivalence + win gates.

Everything runs under a :class:`SimulatedClock` with a shared
:class:`IterationCost` virtual service model, so every number is a pure
function of the seeds.  Sections, each with a hard gate:

* **Bit equivalence** — on a seeded mixed-length multi-session decode
  trace, continuous (iteration-level) scheduling must produce
  bit-identical per-session outputs to sequential per-session decode
  *and* to request-level dynamic batching; a second continuous run
  under a deliberately tight KV :class:`BlockPool` must preempt (swap
  out / swap in) sessions and *still* be bit-identical — the paged-KV
  invariant that swapped pages keep their bits.
* **Throughput win** — the same trace through the same
  :class:`IterationCost` model: request-level batching pays the
  batching window on every partial batch while continuous admits every
  iteration, so iteration-level throughput must beat request-level
  strictly always, and by >= 1.2x unless ``--report-only`` relaxes the
  floor.
* **Paged accounting** — the per-session ledger
  (``SessionCache.session_bytes``), the pool budget
  (``BlockPool.in_use_bytes``), and ``workloads.llm.kv_cache_bytes``
  must agree page-for-page after every trace.
* **Cluster equivalence** — all three routing policies under
  ``scheduler="continuous"`` must stay bit-identical to the single
  sequential engine, with paged-KV sessions migrating wholesale; a
  mid-trace ``fail_replica`` must re-home block-structured KV state
  and still finish bit-identical.

Emits a ``BENCH_continuous.json`` artifact (``--out PATH`` to relocate).
"""

import json
import os

import numpy as np

from repro.cluster import ServingCluster
from repro.serving import (
    DecodeServable,
    IterationCost,
    ServingEngine,
    SimulatedClock,
    decode_payload,
    mixed_decode_trace,
    run_decode_trace,
)
from repro.workloads.llm import DecoderConfig, kv_cache_bytes

#: The seeded mixed-length decode trace every section replays.
TRACE_SESSIONS = 12
TRACE_SEED = 42
PAYLOAD_SEED = 7
MIN_STEPS, MAX_STEPS = 2, 10
HORIZON_S = 10e-3

#: Shared virtual cost of one fused iteration (both schedulers).
COST = IterationCost(base_s=200e-6, per_request_s=50e-6)

#: Request-mode batching window (continuous has none by construction).
WINDOW_US = 2_000.0

MAX_BATCH = 8
WEIGHT_SEED = 1

#: Continuous-over-request throughput floor (relaxed by --report-only).
MIN_CONTINUOUS_GAIN = 1.2


def _decoder() -> DecoderConfig:
    return DecoderConfig("bench-cont", depth=2, dim=16, heads=2, mlp_ratio=2.0)


def _specs():
    return mixed_decode_trace(
        TRACE_SESSIONS,
        seed=TRACE_SEED,
        min_steps=MIN_STEPS,
        max_steps=MAX_STEPS,
        horizon_s=HORIZON_S,
    )


def _payload_fn(config):
    return lambda i, t: decode_payload(PAYLOAD_SEED, i, t, config.dim)


def sequential_reference(config, specs) -> dict:
    """Each session decoded alone on its own engine — the bit oracle."""
    payload_fn = _payload_fn(config)
    outputs = {}
    for i, spec in enumerate(specs):
        engine = ServingEngine(
            DecodeServable(config, seed=WEIGHT_SEED),
            max_batch_size=1,
            max_wait_us=0.0,
            queue_depth=spec.steps,
            clock=SimulatedClock(),
        )
        with engine:
            outs = []
            for t in range(spec.steps):
                handle = engine.submit(payload_fn(i, t), session_id=spec.session_id)
                engine.step()
                outs.append(handle.result(timeout=0))
            outputs[spec.session_id] = outs
    return outputs


def _engine_trace(config, specs, *, scheduler, window_us, **servable_kwargs):
    servable = DecodeServable(config, seed=WEIGHT_SEED, **servable_kwargs)
    engine = ServingEngine(
        servable,
        max_batch_size=MAX_BATCH,
        max_wait_us=window_us,
        queue_depth=4 * TRACE_SESSIONS,
        clock=SimulatedClock(),
        scheduler=scheduler,
        iteration_cost=COST,
    )
    with engine:
        result = run_decode_trace(
            engine,
            specs,
            payload_fn=_payload_fn(config),
            idle_tick_s=window_us * 1e-6,
        )
    return result, engine, servable


def _bit_equal(outputs, reference, specs) -> bool:
    return all(
        len(outputs[s.session_id]) == len(reference[s.session_id])
        and all(
            np.array_equal(a, b)
            for a, b in zip(outputs[s.session_id], reference[s.session_id])
        )
        for s in specs
    )


def bit_equivalence(reference, specs) -> dict:
    """Continuous == request-level == sequential, plus preempted == too."""
    config = _decoder()
    continuous, engine, _ = _engine_trace(
        config, specs, scheduler="continuous", window_us=0.0
    )
    request, _, _ = _engine_trace(
        config, specs, scheduler="request", window_us=WINDOW_US
    )
    # A pool of 5 two-token pages cannot hold the whole active set
    # (max session alone needs 5), so admission must preempt and resume.
    tight_capacity = kv_cache_bytes(config, 2) * 5
    tight, tight_engine, tight_servable = _engine_trace(
        config,
        specs,
        scheduler="continuous",
        window_us=0.0,
        block_size=2,
        kv_capacity_bytes=tight_capacity,
    )
    sched = tight_engine._scheduler
    return {
        "continuous_bit_identical": _bit_equal(continuous["outputs"], reference, specs),
        "request_bit_identical": _bit_equal(request["outputs"], reference, specs),
        "preempted_bit_identical": _bit_equal(tight["outputs"], reference, specs),
        "preemptions": sched.preemptions,
        "swap_ins": sched.swap_ins,
        "pool_reuses": tight_servable.cache.pool.reuses,
        "iteration_occupancy": {
            str(k): v for k, v in engine.metrics.iteration_occupancy().items()
        },
    }


def throughput_win(specs) -> dict:
    """Iteration-level vs request-level under the same cost model."""
    config = _decoder()
    continuous, engine, _ = _engine_trace(
        config, specs, scheduler="continuous", window_us=0.0
    )
    request, _, _ = _engine_trace(
        config, specs, scheduler="request", window_us=WINDOW_US
    )
    gain = continuous["throughput_sps"] / request["throughput_sps"]
    return {
        "steps": continuous["steps"],
        "continuous_makespan_s": continuous["makespan_s"],
        "request_makespan_s": request["makespan_s"],
        "continuous_sps": continuous["throughput_sps"],
        "request_sps": request["throughput_sps"],
        "gain": gain,
        "mean_iteration_occupancy": engine.metrics.mean_iteration_occupancy(),
    }


def paged_accounting(specs) -> dict:
    """Ledger == pool budget == kv_cache_bytes, page for page."""
    config = _decoder()
    checks = {}
    for block_size in (1, 2, 4):
        servable = DecodeServable(config, seed=WEIGHT_SEED, block_size=block_size)
        engine = ServingEngine(
            servable,
            max_batch_size=MAX_BATCH,
            max_wait_us=0.0,
            queue_depth=4 * TRACE_SESSIONS,
            clock=SimulatedClock(),
            scheduler="continuous",
            iteration_cost=COST,
        )
        with engine:
            run_decode_trace(
                engine,
                specs,
                payload_fn=_payload_fn(config),
                release=False,  # keep every session resident for the audit
            )
            cache = servable.cache
            pool = cache.pool
            ledger_ok = True
            for i, spec in enumerate(specs):
                context = spec.steps
                pages = -(-context // block_size)
                expected = kv_cache_bytes(config, pages * block_size)
                ledger_ok &= cache.session_bytes(spec.session_id) == expected
            pool_ok = cache.resident_kv_bytes() == pool.in_use_bytes
        checks[f"block_size_{block_size}"] = {
            "ledger_matches_kv_cache_bytes": bool(ledger_ok),
            "pool_matches_ledger": bool(pool_ok),
            "resident_bytes": cache.resident_kv_bytes(),
        }
    return checks


def _cluster_trace(config, specs, *, policy, replicas=3, fail_after=None):
    cluster = ServingCluster(
        lambda replica_id: DecodeServable(config, seed=WEIGHT_SEED, block_size=2),
        replicas=replicas,
        policy=policy,
        max_batch_size=4,
        max_wait_us=0.0,
        queue_depth=8 * TRACE_SESSIONS,
        clock=SimulatedClock(),
        scheduler="continuous",
        iteration_cost=COST,
    )
    if fail_after is not None:
        state = {"executed": 0, "failed": False}
        original_step = cluster.step

        def failing_step(*, force=True):
            executed = original_step(force=force)
            state["executed"] += executed
            if not state["failed"] and state["executed"] >= fail_after:
                state["failed"] = True
                cluster.fail_replica(0)
            return executed

        cluster.step = failing_step
    with cluster:
        result = run_decode_trace(
            cluster, specs, payload_fn=_payload_fn(config)
        )
        snapshot = cluster.snapshot()
    return result, snapshot


def cluster_equivalence(reference, specs) -> dict:
    """Every routing policy + failover bit-identical under continuous."""
    config = _decoder()
    report = {}
    for policy in ("round_robin", "least_outstanding", "session_affinity"):
        result, snapshot = _cluster_trace(config, specs, policy=policy)
        report[policy] = {
            "bit_identical": _bit_equal(result["outputs"], reference, specs),
            "migrations": snapshot["migrations"]["count"],
        }
    result, snapshot = _cluster_trace(
        config, specs, policy="session_affinity", fail_after=30
    )
    report["failover"] = {
        "bit_identical": _bit_equal(result["outputs"], reference, specs),
        "failovers": snapshot["failovers"],
        "rehomed_sessions": snapshot["migrations"]["sessions_rehomed"],
    }
    return report


def run(assert_speedup: bool = True, out_path: str = "BENCH_continuous.json") -> dict:
    config = _decoder()
    specs = _specs()
    reference = sequential_reference(config, specs)
    lengths = ", ".join(str(s.steps) for s in specs)
    print(
        f"Mixed-length decode trace: {len(specs)} sessions, "
        f"steps [{lengths}], horizon {HORIZON_S * 1e3:.0f} ms (virtual)"
    )

    equiv = bit_equivalence(reference, specs)
    print("\nBit equivalence vs sequential per-session decode")
    for key in (
        "continuous_bit_identical",
        "request_bit_identical",
        "preempted_bit_identical",
    ):
        print(f"  {key:28s} {equiv[key]}")
        assert equiv[key], f"continuous-batching equivalence gate failed: {key}"
    print(
        f"  tight-pool preemptions {equiv['preemptions']}, "
        f"swap-ins {equiv['swap_ins']}, page reuses {equiv['pool_reuses']}"
    )
    assert equiv["preemptions"] > 0, "tight pool must force preemption"
    assert equiv["swap_ins"] > 0, "preempted sessions must resume"

    win = throughput_win(specs)
    floor = MIN_CONTINUOUS_GAIN if assert_speedup else 1.0
    print(
        f"\nThroughput (shared IterationCost base={COST.base_s * 1e6:.0f} us, "
        f"per-request={COST.per_request_s * 1e6:.0f} us; "
        f"request window {WINDOW_US:.0f} us)"
    )
    print(
        f"  request-level:   {win['request_sps']:8.0f} steps/s "
        f"(makespan {win['request_makespan_s'] * 1e3:.2f} ms)"
    )
    print(
        f"  continuous:      {win['continuous_sps']:8.0f} steps/s "
        f"(makespan {win['continuous_makespan_s'] * 1e3:.2f} ms, "
        f"mean occupancy {win['mean_iteration_occupancy']:.2f})"
    )
    print(f"  gain: {win['gain']:.2f}x (floor {floor:.2f}x)")
    assert win["continuous_sps"] > win["request_sps"], (
        "iteration-level scheduling must strictly beat request-level "
        f"({win['continuous_sps']:.0f} vs {win['request_sps']:.0f} steps/s)"
    )
    assert win["gain"] >= floor, (
        f"continuous gain {win['gain']:.2f}x below the {floor:.2f}x floor"
    )

    accounting = paged_accounting(specs)
    print("\nPaged KV accounting (ledger == pool == kv_cache_bytes)")
    for name, check in accounting.items():
        print(
            f"  {name}: ledger {check['ledger_matches_kv_cache_bytes']}, "
            f"pool {check['pool_matches_ledger']} "
            f"({check['resident_bytes']} resident bytes)"
        )
        assert check["ledger_matches_kv_cache_bytes"], f"ledger drift at {name}"
        assert check["pool_matches_ledger"], f"pool/ledger disagreement at {name}"

    cluster = cluster_equivalence(reference, specs)
    print("\nCluster routing policies under continuous scheduling")
    for name, check in cluster.items():
        detail = ", ".join(
            f"{k}={v}" for k, v in check.items() if k != "bit_identical"
        )
        print(f"  {name:18s} bit_identical={check['bit_identical']} ({detail})")
        assert check["bit_identical"], f"cluster equivalence gate failed: {name}"
    assert cluster["failover"]["rehomed_sessions"] > 0, (
        "failover section must re-home paged-KV sessions"
    )

    report = {
        "host_cpus": os.cpu_count() or 1,
        "trace": {
            "sessions": len(specs),
            "steps": [s.steps for s in specs],
            "horizon_s": HORIZON_S,
        },
        "equivalence": equiv,
        "throughput": win,
        "accounting": accounting,
        "cluster": cluster,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_continuous(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["gain"] = result["throughput"]["gain"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="relax the 1.2x continuous-gain floor (bit equivalence and "
        "the strict continuous-beats-request ordering always apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_continuous.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_speedup=not cli.report_only, out_path=cli.out)
