"""Table V — energy / latency / EDP vs prior photonic accelerators.

Paper (4-bit averages over DeiT-T/B): MZI 8.01x energy, 677.56x latency,
5426x EDP; MRR 4.03x, 12.85x, 51.79x; LT-B without arch-level opts
1.80x its own energy.  At 8-bit the MZI energy gap explodes (laser).
LT-B's own latencies are reproduced essentially exactly (e.g. DeiT-T
MHA = 3.12e-3 ms).
"""

import pytest

from repro.analysis import (
    render_table,
    table5_average_ratios,
    table5_photonic_comparison,
)


def bench_table5_4bit(benchmark):
    rows = benchmark.pedantic(
        lambda: table5_photonic_comparison(4), rounds=1, iterations=1
    )

    by_key = {(r["model"], r["module"]): r for r in rows}
    deit_t_mha = by_key[("deit-tiny", "MHA")]
    assert deit_t_mha["lt_latency_ms"] == pytest.approx(3.12e-3, rel=0.02)
    deit_t_all = by_key[("deit-tiny", "All")]
    assert deit_t_all["lt_latency_ms"] == pytest.approx(1.94e-2, rel=0.03)
    assert deit_t_all["lt_energy_mj"] == pytest.approx(0.38, rel=0.25)
    deit_b_all = by_key[("deit-base", "All")]
    assert deit_b_all["lt_latency_ms"] == pytest.approx(2.65e-1, rel=0.03)

    ratios = table5_average_ratios(4)
    assert ratios["mrr_energy"] == pytest.approx(4.0, rel=0.4)
    assert ratios["mrr_latency"] == pytest.approx(12.8, rel=0.35)
    assert ratios["mzi_edp"] > 1e3

    benchmark.extra_info.update(ratios)
    print()
    print(render_table(rows, title="Table V (4-bit)"))
    print(render_table([ratios], title="Average ratios vs LT-B (paper: MZI 8/678/5426, MRR 4/12.9/51.8)"))


def bench_table5_8bit(benchmark):
    rows = benchmark.pedantic(
        lambda: table5_photonic_comparison(8), rounds=1, iterations=1
    )

    ratios = table5_average_ratios(8)
    # Paper: 8-bit MZI energy ratio grows vs 4-bit (exponential laser power).
    assert ratios["mzi_energy"] > table5_average_ratios(4)["mzi_energy"]
    # Latency is precision-independent for both LT-B and the baselines.
    assert ratios["mrr_latency"] == pytest.approx(
        table5_average_ratios(4)["mrr_latency"], rel=0.01
    )

    benchmark.extra_info.update(ratios)
    print()
    print(render_table(rows, title="Table V (8-bit)"))
