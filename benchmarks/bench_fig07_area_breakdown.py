"""Fig. 7 — area breakdown of LT-B and LT-L.

Paper: photonic core ~20 %, memory ~25 %, DAC ~25 %; laser, ADC, and MZM
account for less than 30 % combined.
"""

from repro.analysis import fig7_area_breakdown, render_table


def bench_fig7_area_breakdown(benchmark):
    rows = benchmark.pedantic(fig7_area_breakdown, rounds=3, iterations=1)

    lt_b = {r["category"]: r for r in rows if r["config"] == "LT-B"}
    assert 20 < lt_b["dac"]["share_pct"] < 30
    assert 20 < lt_b["memory"]["share_pct"] < 30
    assert 15 < lt_b["photonic_core"]["share_pct"] < 25

    benchmark.extra_info["lt_b_dac_share_pct"] = lt_b["dac"]["share_pct"]
    print()
    print(render_table(rows, title="Fig. 7: area breakdown (mm^2)"))
