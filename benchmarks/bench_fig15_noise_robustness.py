"""Fig. 15 — inference accuracy vs encoding magnitude and phase noise.

Paper: <0.5 % degradation across magnitude noise 0.02-0.08 and phase
noise 1-7 deg on 4-bit DeiT-T.  The sweep here adds two extension
points beyond the paper's range to locate where accuracy collapses.
"""

import pytest

from repro.analysis import (
    fig15_noise_robustness,
    reference_vit,
    render_table,
)


@pytest.fixture(scope="module")
def trained_reference():
    return reference_vit()


def bench_fig15_noise_robustness(benchmark, trained_reference):
    rows = benchmark.pedantic(fig15_noise_robustness, rounds=1, iterations=1)

    in_paper_range = [
        row
        for row in rows
        if (row["sweep"] == "magnitude" and row["value"] <= 0.08)
        or (row["sweep"] == "phase" and row["value"] <= 7.0)
    ]
    for row in in_paper_range:
        assert abs(row["accuracy_drop"]) <= 0.08

    extreme = [r for r in rows if r["sweep"] == "magnitude" and r["value"] >= 0.3]
    assert extreme and all(
        r["photonic_accuracy"] < r["digital_accuracy"] for r in extreme
    )

    benchmark.extra_info["worst_in_range_drop"] = max(
        abs(r["accuracy_drop"]) for r in in_paper_range
    )
    print()
    print(render_table(rows, title="Fig. 15: accuracy vs encoding noise"))
