"""Fig. 8 — power breakdown at 4-bit and 8-bit precision.

Paper: LT-B totals 14.75 W (4-bit) and 50.94 W (8-bit); the 8-bit DACs
take over 50 % of total power, and laser power rises 0.77 W -> 12.3 W.
"""

import pytest

from repro.analysis import fig8_power_breakdown, render_table


def bench_fig8_power_breakdown(benchmark):
    rows = benchmark.pedantic(fig8_power_breakdown, rounds=3, iterations=1)

    def total(config_prefix, bits):
        return sum(
            r["power_w"]
            for r in rows
            if r["config"].startswith(config_prefix) and r["bits"] == bits
        )

    assert total("LT-B", 4) == pytest.approx(14.75, rel=0.05)
    assert total("LT-B", 8) == pytest.approx(50.94, rel=0.08)
    assert total("LT-L", 4) == pytest.approx(28.06, rel=0.05)
    assert total("LT-L", 8) == pytest.approx(95.92, rel=0.08)

    dac_8bit = next(
        r
        for r in rows
        if r["config"].startswith("LT-B") and r["bits"] == 8 and r["category"] == "dac"
    )
    assert dac_8bit["share_pct"] > 45  # paper: >50 %

    benchmark.extra_info["lt_b_4bit_w"] = total("LT-B", 4)
    benchmark.extra_info["lt_b_8bit_w"] = total("LT-B", 8)
    print()
    print(render_table(rows, title="Fig. 8: power breakdown (W)"))
