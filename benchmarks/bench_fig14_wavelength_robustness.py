"""Fig. 14 — inference accuracy vs number of WDM wavelengths.

Paper: running DeiT-T (ImageNet) and BERT-base (SST-2) on the noisy
photonic model shows <0.5 % accuracy variation from 6 to 26 wavelengths
and <1 % loss vs the GPU (noise-free quantized) reference.  This bench
uses the substituted synthetic workloads (see DESIGN.md) with
noise-aware-trained checkpoints; training cost is excluded from the
measured time via a module-scoped warm-up fixture.
"""

import pytest

from repro.analysis import (
    fig14_wavelength_robustness,
    reference_bert,
    reference_vit,
    render_table,
)


@pytest.fixture(scope="module")
def trained_references():
    return reference_vit(), reference_bert()


def bench_fig14_wavelength_robustness(benchmark, trained_references):
    rows = benchmark.pedantic(
        fig14_wavelength_robustness, rounds=1, iterations=1
    )

    assert {row["model"] for row in rows} == {"vit", "bert"}
    for row in rows:
        # Small synthetic test sets: a few samples of granularity.
        assert abs(row["accuracy_drop"]) <= 0.08
        assert row["photonic_accuracy"] > 0.75

    worst = max(abs(row["accuracy_drop"]) for row in rows)
    benchmark.extra_info["worst_accuracy_drop"] = worst
    print()
    print(render_table(rows, title="Fig. 14: accuracy vs wavelengths"))
