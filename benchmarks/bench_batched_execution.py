"""Batched photonic execution engine vs. the preserved per-matrix loop.

The vectorised engine (:meth:`DPTC.matmul`) computes every head and
every sequence of an attention workload in single whole-batch matmul
expressions; the seed implementation looped a 2-D product per matrix
(preserved verbatim as :meth:`DPTC.matmul_reference`).  This benchmark
measures both on the same noisy workloads and verifies they agree:

* **Headline** — an 8-head x 8-sequence multi-head attention forward
  (short 8-token sequences, the decode/windowed-attention regime where
  per-matrix Python overhead dominates the loop): expected >= 5x.
* **Kernel table** — raw ``QK^T`` stacks across tile sizes, showing how
  the advantage shrinks as per-matrix GEMMs grow BLAS-bound.
* **Equivalence** — the ideal batched path is bit-exact with
  ``np.matmul``; under one shared noise draw the noisy batched path
  matches the reference loop to machine precision.

Both engines consume the same generator type (SFC64 — the fastest
numpy bit generator; noise sampling is a large shared cost) and the
paper's full noise model.  Timings are best-of-N to suppress scheduler
jitter.

Run directly (``python benchmarks/bench_batched_execution.py``) or via
pytest-benchmark like the figure benchmarks.
"""

import json
import time

import numpy as np

from repro.core import DPTC, NoiseModel
from repro.neural import MultiHeadAttention, PhotonicExecutor, Tensor, no_grad

#: Headline workload: 8 heads x 8 sequences (paper-scale DeiT-T width).
HEADS = 8
SEQUENCES = 8
TOKENS = 8
DIM = 192

#: Acceptance floor for the headline speedup.
MIN_SPEEDUP = 5.0


def _best_of(fn, repeats: int = 9, inner: int = 3) -> float:
    """Best-of-N mean wall-clock of ``fn`` in seconds."""
    fn()  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - start) / inner)
    return min(samples)


def _make_executor() -> PhotonicExecutor:
    return PhotonicExecutor(
        noise=NoiseModel.paper_default(),
        quant=None,
        rng=np.random.Generator(np.random.SFC64(0)),
    )


def attention_speedup(
    dim: int = DIM,
    heads: int = HEADS,
    tokens: int = TOKENS,
    sequences: int = SEQUENCES,
    repeats: int = 9,
) -> dict:
    """Batched MHA forward vs. the seed's per-sequence / per-matrix path."""
    executor = _make_executor()
    mha = MultiHeadAttention(
        dim, heads, executor=executor, rng=np.random.default_rng(1)
    )
    x = np.random.default_rng(0).normal(size=(sequences, tokens, dim))
    dptc = executor._dptc
    with no_grad():
        batched_s = _best_of(lambda: mha(Tensor(x)), repeats=repeats)
        # The reference: every DPTC product runs through the preserved
        # per-matrix loop, one sequence at a time — the only execution
        # path the seed implementation supported.
        vectorised = dptc.matmul
        dptc.matmul = dptc.matmul_reference
        try:
            loop_s = _best_of(
                lambda: [mha(Tensor(x[i])) for i in range(sequences)],
                repeats=max(5, repeats - 4),
                inner=2,
            )
        finally:
            dptc.matmul = vectorised
    return {
        "workload": f"MHA {heads}h x {sequences}seq x {tokens}tok (dim {dim})",
        "batched_ms": batched_s * 1e3,
        "loop_ms": loop_s * 1e3,
        "speedup": loop_s / batched_s,
    }


def kernel_speedup(tokens: int, head_dim: int, repeats: int = 7) -> dict:
    """Raw noisy QK^T stack: [8, 8, tokens, head_dim] x [..., head_dim, tokens]."""
    dptc = DPTC(noise=NoiseModel.paper_default())
    rng = np.random.default_rng(0)
    a = rng.normal(size=(HEADS, SEQUENCES, tokens, head_dim))
    b = rng.normal(size=(HEADS, SEQUENCES, head_dim, tokens))

    def gen():
        return np.random.Generator(np.random.SFC64(1))

    batched_s = _best_of(lambda: dptc.matmul(a, b, rng=gen()), repeats=repeats)
    loop_s = _best_of(
        lambda: dptc.matmul_reference(a, b, rng=gen()), repeats=max(4, repeats - 3),
        inner=1,
    )
    return {
        "workload": f"QK^T [8x8x{tokens}x{head_dim}]",
        "batched_ms": batched_s * 1e3,
        "loop_ms": loop_s * 1e3,
        "speedup": loop_s / batched_s,
    }


def equivalence_report() -> dict:
    """Numerical agreement between the batched engine and the loop."""
    rng = np.random.default_rng(3)
    a = rng.normal(size=(HEADS, SEQUENCES, 16, 16))
    b = rng.normal(size=(HEADS, SEQUENCES, 16, 16))

    ideal = DPTC(noise=NoiseModel.ideal())
    bit_exact = bool(np.array_equal(ideal.matmul(a, b), np.matmul(a, b)))

    noisy = DPTC(noise=NoiseModel.paper_default())
    draw = noisy.sample_noise(a.shape, b.shape, np.random.default_rng(7))
    fast = noisy.matmul(a, b, draw=draw)
    loop = noisy.matmul_reference(a, b, draw=draw)
    scale = float(np.max(np.abs(loop)))
    max_rel = float(np.max(np.abs(fast - loop)) / scale)
    return {"ideal_bit_exact": bit_exact, "noisy_max_rel_deviation": max_rel}


def run(
    assert_speedup: bool = True,
    attempts: int = 3,
    out_path: str | None = None,
) -> dict:
    equiv = equivalence_report()
    print("Numerical equivalence")
    print(f"  ideal batched path bit-exact with np.matmul : {equiv['ideal_bit_exact']}")
    print(
        "  noisy batched vs reference loop (shared draw) : "
        f"max rel deviation {equiv['noisy_max_rel_deviation']:.2e}"
    )
    assert equiv["ideal_bit_exact"], "ideal batched path must be bit-exact"
    assert equiv["noisy_max_rel_deviation"] < 1e-9, "noisy paths must agree"

    print("\nKernel-level noisy QK^T stacks (64 matrices)")
    for tokens, head_dim in [(12, 12), (16, 16), (64, 64)]:
        row = kernel_speedup(tokens, head_dim)
        print(
            f"  {row['workload']:<24} batched {row['batched_ms']:7.2f} ms | "
            f"loop {row['loop_ms']:8.2f} ms | {row['speedup']:4.1f}x"
        )

    # Headline: best of a few attempts (scheduler noise suppression).
    headline = None
    for _ in range(attempts):
        row = attention_speedup()
        if headline is None or row["speedup"] > headline["speedup"]:
            headline = row
        if headline["speedup"] >= MIN_SPEEDUP:
            break
    print(f"\nHeadline: {headline['workload']}")
    print(
        f"  batched engine {headline['batched_ms']:7.2f} ms | "
        f"per-matrix reference loop {headline['loop_ms']:8.2f} ms | "
        f"speedup {headline['speedup']:.1f}x (floor {MIN_SPEEDUP:.0f}x)"
    )
    if assert_speedup:
        assert headline["speedup"] >= MIN_SPEEDUP, (
            f"batched engine speedup {headline['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP:.0f}x floor"
        )
    headline["equivalence"] = equiv
    if out_path is not None:
        with open(out_path, "w") as handle:
            json.dump(headline, handle, indent=2)
        print(f"\nwrote {out_path}")
    return headline


def bench_batched_execution(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = result["speedup"]
    benchmark.extra_info["batched_ms"] = result["batched_ms"]
    benchmark.extra_info["loop_ms"] = result["loop_ms"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="skip the speedup floor for CI runners with unpredictable "
        "scheduling (the numerical-equivalence assertions always apply)",
    )
    parser.add_argument(
        "--out", default=None, help="dump the headline numbers to this JSON path"
    )
    cli = parser.parse_args()
    run(assert_speedup=not cli.report_only, out_path=cli.out)
