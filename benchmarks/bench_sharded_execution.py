"""Multi-core sharded execution + batched training loop benchmark.

Sections, each with a hard equivalence gate and a measurement:

* **Sharding equivalence** — for every ``num_cores`` in the scaling
  sweep (including cores > batch and non-divisible shards) the ideal
  sharded result must be *bit-identical* to the single-core batched
  :meth:`DPTC.matmul` on *both* shard axes (the exactness contract;
  the ideal contraction path evaluates one exact full product because
  hardware digital accumulation is exact).  The *genuine* K-split
  machinery — per-core slabs of a non-divisible ``d % num_cores``
  split merged by the digital partial-sum accumulator — is gated by a
  deterministic dispersion-only calibrated run that must recover the
  exact product, plus a direct splitter/accumulator mechanics check.
  The noisy sharded path must be reproducible under a fixed seed,
  bit-equal between the ``thread`` and ``process`` backends, and
  statistically consistent with single-core execution.
* **Scaling curve** — wall-clock of a noisy batched attention-shaped
  stack for ``num_cores in {1, 2, 4, 8}``, swept over both shard axes
  (a batch-vs-contraction comparison; thread backend, recorded per
  row along with ``shard_axis``).  Parallel headroom follows the
  host's CPU count — recorded in the artifact — so a 1-CPU runner
  legitimately reports a flat curve; the curve is a trend record, not
  a gate.
* **Training loop** — the batched minibatch :func:`train_classifier`
  versus the seed per-sample loop (preserved as
  :func:`train_classifier_reference`): losses must agree to machine
  precision on a deterministic executor, and the noisy noise-aware run
  must show a measured speedup.

Emits a ``BENCH_sharded.json`` artifact (``--out PATH`` to relocate)
with every number printed, for the CI trend record.  Every scaling row
records ``backend`` and ``shard_axis`` so nightly artifacts
distinguish the lanes.  ``--report-only`` relaxes the *speedup* floors
(CI runners schedule unpredictably); the numerical equivalence gates
always apply.
"""

import json
import os
import time

import numpy as np

from repro.core import (
    DPTC,
    CalibratedDPTC,
    DigitalAccumulator,
    NoiseModel,
    ShardedDPTC,
    contraction_slabs,
)
from repro.core.noise import EncodingNoise, SystematicNoise
from repro.neural import (
    PhotonicExecutor,
    TinyViT,
    striped_image_dataset,
    train_classifier,
    train_classifier_reference,
)

#: Core counts of the scaling sweep (LT-B provisions 8 cores).
CORE_COUNTS = (1, 2, 4, 8)

#: Noisy attention-shaped workload for the scaling curve.
SCALING_BATCH = 64
SCALING_TOKENS = 32
SCALING_DIM = 64

#: Acceptance floor for the batched-over-per-sample training speedup.
MIN_TRAIN_SPEEDUP = 2.0


def _best_of(fn, repeats: int = 5, inner: int = 2) -> float:
    """Best-of-N mean wall-clock of ``fn`` in seconds."""
    fn()  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - start) / inner)
    return min(samples)


def sharding_equivalence() -> dict:
    """Bit-exactness, edge-case, and reproducibility gates (both axes)."""
    rng = np.random.default_rng(0)
    # d=25 makes the contraction split non-divisible at every multi-core
    # count in the sweep; the batch cases keep their original shapes.
    cases = {
        "even": (rng.normal(size=(8, 6, 24)), rng.normal(size=(8, 24, 6))),
        "non_divisible": (rng.normal(size=(7, 6, 24)), rng.normal(size=(7, 24, 6))),
        "cores_gt_batch": (rng.normal(size=(3, 6, 24)), rng.normal(size=(3, 24, 6))),
        "broadcast_weight": (rng.normal(size=(6, 5, 24)), rng.normal(size=(24, 4))),
        "no_batch_axes": (rng.normal(size=(9, 24)), rng.normal(size=(24, 9))),
        "non_divisible_k": (rng.normal(size=(5, 6, 25)), rng.normal(size=(5, 25, 6))),
    }
    single = DPTC(noise=NoiseModel.ideal())
    ideal_bit_exact = {axis: True for axis in ("batch", "contraction")}
    for a, b in cases.values():
        reference = single.matmul(a, b)
        for num_cores in CORE_COUNTS:
            for axis in ideal_bit_exact:
                sharded = ShardedDPTC(num_cores=num_cores, shard_axis=axis)
                if not np.array_equal(sharded.matmul(a, b), reference):
                    ideal_bit_exact[axis] = False

    # The ideal gate above checks the engine's exactness *contract*
    # (the ideal contraction path evaluates one exact full product —
    # the digital accumulator is exact in hardware).  The genuine
    # K-split machinery is gated separately: dispersion-only noise is
    # deterministic but NOT ideal, so a calibrated 4-core engine really
    # slices d=25 into per-core slabs and digitally accumulates the
    # partials — and must still recover the exact product to ~1e-9.
    dispersion_only = NoiseModel(
        encoding=EncodingNoise(0.0, 0.0),
        systematic=SystematicNoise(0.0),
        include_dispersion=True,
    )
    a_k, b_k = cases["non_divisible_k"]
    calibrated = ShardedDPTC(
        num_cores=4,
        noise=dispersion_only,
        core_cls=CalibratedDPTC,
        shard_axis="contraction",
    )
    exact = np.matmul(a_k, b_k)
    slab_rel_error = float(
        np.linalg.norm(calibrated.matmul(a_k, b_k) - exact) / np.linalg.norm(exact)
    )
    # And the splitter + accumulator mechanics directly: ideal per-slab
    # products summed in core order agree with the full product to
    # float64 reassociation precision.
    acc = DigitalAccumulator.accumulate(
        [
            sa @ sb
            for sa, sb in zip(
                contraction_slabs(a_k, 4, axis=-1),
                contraction_slabs(b_k, 4, axis=-2),
            )
            if sa.shape[-1] > 0
        ]
    )
    slab_path_exact = bool(
        slab_rel_error < 1e-9 and np.allclose(acc, exact, rtol=1e-12, atol=1e-12)
    )

    seeded_reproducible = {}
    noisy_engines = {}
    for axis, case in (("batch", "non_divisible"), ("contraction", "non_divisible_k")):
        noisy = ShardedDPTC(
            num_cores=4, noise=NoiseModel.paper_default(), shard_axis=axis
        )
        noisy_engines[axis] = (noisy, cases[case])
        a, b = cases[case]
        first = noisy.matmul(a, b, rng=np.random.default_rng(7))
        second = noisy.matmul(a, b, rng=np.random.default_rng(7))
        seeded_reproducible[axis] = bool(np.array_equal(first, second))

    # Thread- and process-backend execution must be bit-equal on equal
    # seeds (deterministic worker reconstruction + per-core streams).
    backend_bit_equal = {}
    a_small, b_small = cases["cores_gt_batch"]
    for axis in ("batch", "contraction"):
        thread = ShardedDPTC(
            num_cores=2, noise=NoiseModel.paper_default(), shard_axis=axis
        )
        process = ShardedDPTC(
            num_cores=2,
            noise=NoiseModel.paper_default(),
            shard_axis=axis,
            backend="process",
        )
        backend_bit_equal[axis] = bool(
            np.array_equal(
                thread.matmul(a_small, b_small, rng=np.random.default_rng(13)),
                process.matmul(a_small, b_small, rng=np.random.default_rng(13)),
            )
        )
        process.close()
        thread.close()

    errors = {}
    consistent = {}
    for axis, (noisy, (a, b)) in noisy_engines.items():
        exact = np.matmul(a, b)
        scale = np.linalg.norm(exact)
        single_noisy = DPTC(noise=NoiseModel.paper_default())
        axis_errors = {}
        for name, engine in (("single_core", single_noisy), ("sharded_4", noisy)):
            draws = [
                np.linalg.norm(
                    engine.matmul(a, b, rng=np.random.default_rng(100 + seed)) - exact
                )
                / scale
                for seed in range(20)
            ]
            axis_errors[name] = float(np.mean(draws))
        errors[axis] = axis_errors
        consistent[axis] = bool(
            abs(axis_errors["sharded_4"] - axis_errors["single_core"])
            < 0.5 * axis_errors["single_core"]
        )
    return {
        "ideal_bit_exact": ideal_bit_exact,
        "slab_path_exact": slab_path_exact,
        "slab_path_rel_error": slab_rel_error,
        "seeded_reproducible": seeded_reproducible,
        "backend_bit_equal": backend_bit_equal,
        "noise_mean_rel_error": errors,
        "noise_statistics_consistent": consistent,
    }


def scaling_curve() -> list[dict]:
    """Wall-clock of one noisy batched matmul per core count and axis.

    The batch-vs-contraction comparison: the same attention-shaped
    stack sharded along the leading batch axis and along the K axis
    (digital partial-sum accumulation), thread backend.  Each row
    records ``shard_axis`` and ``backend`` so artifact lanes stay
    distinguishable.
    """
    rng = np.random.default_rng(1)
    a = rng.normal(size=(SCALING_BATCH, SCALING_TOKENS, SCALING_DIM))
    b = rng.normal(size=(SCALING_BATCH, SCALING_DIM, SCALING_TOKENS))
    rows = []
    for shard_axis in ("batch", "contraction"):
        base_ms = None
        for num_cores in CORE_COUNTS:
            engine = ShardedDPTC(
                num_cores=num_cores,
                noise=NoiseModel.paper_default(),
                shard_axis=shard_axis,
            )

            def step():
                engine.matmul(a, b, rng=np.random.default_rng(2))

            elapsed_ms = _best_of(step) * 1e3
            engine.close()
            if base_ms is None:
                base_ms = elapsed_ms
            rows.append(
                {
                    "shard_axis": shard_axis,
                    "backend": engine.backend,
                    "num_cores": num_cores,
                    "ms": elapsed_ms,
                    "speedup_vs_1_core": base_ms / elapsed_ms,
                }
            )
    return rows


def training_equivalence() -> dict:
    """Batched loop == seed per-sample loop on a deterministic executor."""
    data = striped_image_dataset(n_samples=32, n_classes=4, seed=1)
    batched = train_classifier(
        TinyViT(n_classes=4, depth=1, seed=0), data, epochs=2, lr=5e-3, seed=0
    )
    reference = train_classifier_reference(
        TinyViT(n_classes=4, depth=1, seed=0), data, epochs=2, lr=5e-3, seed=0
    )
    max_loss_deviation = float(
        max(abs(x - y) for x, y in zip(batched.losses, reference.losses))
    )
    return {
        "batched_losses": batched.losses,
        "reference_losses": reference.losses,
        "max_loss_deviation": max_loss_deviation,
        "accuracy_match": batched.train_accuracy == reference.train_accuracy,
    }


def training_speedup(num_cores: int = 2) -> dict:
    """Noise-aware minibatch training: batched loop vs. per-sample loop."""
    data = striped_image_dataset(n_samples=32, n_classes=4, seed=2)

    def run_batched() -> float:
        model = TinyViT(
            n_classes=4,
            depth=1,
            executor=PhotonicExecutor.paper_default(seed=0, num_cores=num_cores),
            seed=0,
        )
        start = time.perf_counter()
        train_classifier(model, data, epochs=1, lr=5e-3, seed=0)
        return time.perf_counter() - start

    def run_reference() -> float:
        model = TinyViT(
            n_classes=4,
            depth=1,
            executor=PhotonicExecutor.paper_default(seed=0),
            seed=0,
        )
        start = time.perf_counter()
        train_classifier_reference(model, data, epochs=1, lr=5e-3, seed=0)
        return time.perf_counter() - start

    batched_s = min(run_batched() for _ in range(3))
    reference_s = min(run_reference() for _ in range(2))
    return {
        "workload": f"TinyViT noise-aware epoch, 32 samples, {num_cores} cores",
        "batched_s": batched_s,
        "per_sample_s": reference_s,
        "speedup": reference_s / batched_s,
    }


def run(assert_speedup: bool = True, out_path: str = "BENCH_sharded.json") -> dict:
    equiv = sharding_equivalence()
    print("Sharding equivalence")
    for axis in ("batch", "contraction"):
        print(
            f"  [{axis}] ideal bit-exact {equiv['ideal_bit_exact'][axis]} | "
            f"seed-reproducible {equiv['seeded_reproducible'][axis]} | "
            f"thread==process {equiv['backend_bit_equal'][axis]} | "
            "rel err single {single_core:.4f} vs sharded(4) {sharded_4:.4f}".format(
                **equiv["noise_mean_rel_error"][axis]
            )
        )
        assert equiv["ideal_bit_exact"][axis], (
            f"ideal {axis}-sharded path must be bit-exact"
        )
        assert equiv["seeded_reproducible"][axis], (
            f"{axis}-sharded noise must be seed-reproducible"
        )
        assert equiv["backend_bit_equal"][axis], (
            f"{axis}-sharded thread and process backends must be bit-equal"
        )
        assert equiv["noise_statistics_consistent"][axis], (
            f"per-core noise statistics drifted ({axis})"
        )
    print(
        "  [contraction] genuine K-split slab path (calibrated, d=25/4 cores) "
        f"exact to {equiv['slab_path_rel_error']:.1e}"
    )
    assert equiv["slab_path_exact"], (
        "calibrated contraction slab path must recover the exact product"
    )

    train_equiv = training_equivalence()
    print("\nBatched training loop equivalence (ideal executor)")
    print(f"  max loss deviation vs per-sample loop : {train_equiv['max_loss_deviation']:.2e}")
    assert train_equiv["max_loss_deviation"] < 1e-9, "training loops must agree"
    assert train_equiv["accuracy_match"], "training accuracies must agree"

    cpus = os.cpu_count() or 1
    print("\nScaling curve (noisy batched matmul, "
          f"[{SCALING_BATCH}x{SCALING_TOKENS}x{SCALING_DIM}] stack, "
          f"{cpus} host CPU(s), batch vs contraction sharding)")
    scaling = scaling_curve()
    for row in scaling:
        print(
            f"  [{row['shard_axis']:11s}/{row['backend']}] "
            f"{row['num_cores']} core(s): {row['ms']:7.2f} ms "
            f"({row['speedup_vs_1_core']:.2f}x vs 1 core)"
        )

    train = training_speedup()
    print(f"\nTraining loop: {train['workload']}")
    print(
        f"  batched {train['batched_s'] * 1e3:7.1f} ms | per-sample "
        f"{train['per_sample_s'] * 1e3:7.1f} ms | speedup {train['speedup']:.1f}x "
        f"(floor {MIN_TRAIN_SPEEDUP:.0f}x)"
    )
    if assert_speedup:
        assert train["speedup"] >= MIN_TRAIN_SPEEDUP, (
            f"batched training speedup {train['speedup']:.2f}x below the "
            f"{MIN_TRAIN_SPEEDUP:.0f}x floor"
        )

    report = {
        "host_cpus": cpus,
        "equivalence": equiv,
        "training_equivalence": train_equiv,
        "scaling": scaling,
        "training_speedup": train,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_sharded_execution(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["training_speedup"] = result["training_speedup"]["speedup"]
    benchmark.extra_info["scaling"] = result["scaling"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="skip the speedup floors (equivalence gates still apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_sharded.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_speedup=not cli.report_only, out_path=cli.out)
