"""Ablations of the architecture-level design choices (DESIGN.md S20).

Three knobs the paper fixes by design are swept here:

* **temporal accumulation depth** — the paper sets 3; deeper analog
  accumulation divides the ADC rate further but the returns diminish
  once the ADC is no longer the bottleneck;
* **inter-core broadcast** — the Nt x modulation saving of Sec. IV-C.1;
* **dispersion calibration** (extension) — digitally removing the
  deterministic Eq. 9 error terms.
"""

from dataclasses import replace

import pytest

from repro.analysis import render_table
from repro.arch import ArchOptimizations, LTEnergyModel, lt_base, power_breakdown
from repro.core import DPTCGeometry, dispersion_error_reduction
from repro.units import MJ
from repro.workloads import deit_tiny, gemm_trace


def bench_ablation_accumulation_depth(benchmark):
    trace = gemm_trace(deit_tiny())

    def sweep():
        rows = []
        for depth in (1, 2, 3, 6, 12):
            opts = ArchOptimizations(
                analog_temporal_accumulation=depth > 1,
                temporal_accumulation_depth=max(1, depth),
            )
            config = lt_base(4).with_optimizations(opts)
            energy = LTEnergyModel(config).workload_energy(trace)
            rows.append(
                {
                    "depth": depth,
                    "adc_power_w": power_breakdown(config).by_category["adc"],
                    "adc_energy_uj": energy.by_category["adc"] * 1e6,
                    "total_energy_mj": energy.total / MJ,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    adc_energy = [row["adc_energy_uj"] for row in rows]
    totals = [row["total_energy_mj"] for row in rows]
    # ADC cost falls monotonically with depth...
    assert adc_energy == sorted(adc_energy, reverse=True)
    # ...and the paper's depth 3 captures most of the benefit.
    saving_at_3 = totals[0] - totals[2]
    saving_at_12 = totals[0] - totals[-1]
    assert saving_at_3 > 0.6 * saving_at_12

    benchmark.extra_info["total_at_depth3_mj"] = totals[2]
    print()
    print(render_table(rows, title="Ablation: analog temporal accumulation depth"))


def bench_ablation_inter_core_broadcast(benchmark):
    trace = gemm_trace(deit_tiny())

    def sweep():
        rows = []
        for n_tiles in (2, 4, 8):
            for broadcast in (False, True):
                opts = ArchOptimizations(inter_core_broadcast=broadcast)
                config = replace(
                    lt_base(4).with_optimizations(opts), n_tiles=n_tiles
                )
                energy = LTEnergyModel(config).workload_energy(trace)
                rows.append(
                    {
                        "n_tiles": n_tiles,
                        "broadcast": broadcast,
                        "op2_encoding_uj": (
                            energy.by_category["op2-dac"]
                            + energy.by_category["op2-mod"]
                        )
                        * 1e6,
                        "total_energy_mj": energy.total / MJ,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Broadcast always reduces op2 encoding; the saving grows with Nt.
    savings = {}
    for n_tiles in (2, 4, 8):
        off = next(
            r for r in rows if r["n_tiles"] == n_tiles and not r["broadcast"]
        )
        on = next(r for r in rows if r["n_tiles"] == n_tiles and r["broadcast"])
        savings[n_tiles] = off["op2_encoding_uj"] / on["op2_encoding_uj"]
        assert savings[n_tiles] == pytest.approx(n_tiles, rel=0.1)
    assert savings[8] > savings[2]

    benchmark.extra_info["op2_saving_at_4_tiles"] = savings[4]
    print()
    print(render_table(rows, title="Ablation: inter-core operand broadcast"))


def bench_ablation_dispersion_calibration(benchmark):
    def sweep():
        rows = []
        for n_lambda in (12, 24, 48, 112):
            plain, calibrated = dispersion_error_reduction(
                DPTCGeometry(12, 12, n_lambda)
            )
            rows.append(
                {
                    "wavelengths": n_lambda,
                    "uncalibrated_err": plain,
                    "calibrated_err": calibrated,
                    "reduction_x": plain / max(calibrated, 1e-18),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for row in rows:
        assert row["calibrated_err"] < row["uncalibrated_err"] / 100
    # Dispersion error grows with the comb width; calibration holds.
    uncal = [row["uncalibrated_err"] for row in rows]
    assert uncal == sorted(uncal)

    benchmark.extra_info["reduction_at_112"] = rows[-1]["reduction_x"]
    print()
    print(render_table(rows, title="Extension: dispersion calibration"))
