"""Dynamic-batching serving benchmark: equivalence gates + load curves.

Sections, each with a hard gate and a measurement:

* **Batching equivalence** — dynamically coalesced batches must be
  *bit-identical* to sequential single-request execution for equal
  seeds, on all three servables: vision (fixed-shape images, 2-core
  sharded executor), text (**ragged** prompts coalesced under the
  pad-to-model-length policy), and decode (multi-session KV-cache
  streams whose photonic GEMV projections batch across sessions).
  Prompt memoization must return the bit-identical cached activation
  and count as a cache hit.
* **Throughput curve** — open-loop Poisson load (seeded arrival
  process) swept over ``max_batch_size in {1, 2, 4, 8}``: throughput
  must increase strictly from ``max_batch_size=1`` to
  ``max_batch_size=8`` (the whole point of dynamic batching), with a
  margin floor that ``--report-only`` relaxes for noisy CI runners.
  A closed-loop row records the sustainable service rate.
* **Simulated-clock metrics** — the deterministic no-sleep regime:
  batching deadlines and latency percentiles under a
  :class:`SimulatedClock` must come out exactly as computed by hand.

Emits a ``BENCH_serving.json`` artifact (``--out PATH`` to relocate)
with every number printed, for the CI trend record.
"""

import json
import os

import numpy as np

from repro.neural.photonic import PhotonicExecutor
from repro.neural.vision import TinyViT
from repro.serving import (
    BatchingPolicy,
    DecodeServable,
    ServingEngine,
    SessionCache,
    SimulatedClock,
    TenantSpec,
    TextServable,
    VisionServable,
    multi_tenant_arrivals,
    poisson_gaps,
    run_closed_loop,
    run_open_loop,
)
from repro.workloads.llm import DecoderConfig
from repro.workloads.transformer import KIND_TEXT, TransformerConfig, servable_model

#: Batch-size sweep of the throughput curve.
BATCH_SIZES = (1, 2, 4, 8)

#: Open-loop load: requests and mean Poisson inter-arrival gap.
LOAD_REQUESTS = 48
LOAD_MEAN_GAP_S = 0.25e-3

#: Throughput margin of max_batch_size=8 over 1 (relaxed by --report-only).
MIN_BATCHING_GAIN = 1.3


def _vision_model(seed: int = 0, num_cores: int = 1) -> TinyViT:
    """Small quantized-deterministic ViT (equal seeds => identical weights)."""
    return TinyViT(
        image_size=16,
        patch_size=4,
        dim=32,
        depth=1,
        heads=2,
        n_classes=4,
        mlp_ratio=2.0,
        executor=PhotonicExecutor(num_cores=num_cores),
        seed=seed,
    )


def _run_all(servable, payloads, max_batch_size, *, session_ids=None) -> list:
    """Submit everything into a manual-mode engine and drain it."""
    engine = ServingEngine(
        servable,
        max_batch_size=max_batch_size,
        max_wait_us=0.0,
        queue_depth=len(payloads),
        clock=SimulatedClock(),
        close_executor=True,
    )
    with engine:
        handles = [
            engine.submit(
                payload,
                session_id=None if session_ids is None else session_ids[i],
            )
            for i, payload in enumerate(payloads)
        ]
        engine.run_until_idle()
        return [handle.result(timeout=0) for handle in handles]


def batching_equivalence() -> dict:
    """Coalesced batches bit-identical to sequential execution."""
    rng = np.random.default_rng(0)

    # Vision: fixed-shape payloads on a 2-core sharded quantized executor.
    images = [rng.normal(size=(16, 16)) for _ in range(16)]
    sequential = _run_all(VisionServable(_vision_model(num_cores=2)), images, 1)
    batched = _run_all(VisionServable(_vision_model(num_cores=2)), images, 8)
    vision_ok = all(np.array_equal(s, b) for s, b in zip(sequential, batched))

    # Text: ragged prompts coalesced under the pad-to-model-length policy.
    text_config = TransformerConfig(
        "bench-serve-bert", depth=1, dim=32, heads=2, seq_len=17,
        mlp_ratio=2.0, kind=KIND_TEXT, n_classes=2,
    )
    prompts = [
        rng.integers(1, 32, size=int(rng.integers(1, 17))) for _ in range(16)
    ]

    def text_servable():
        model = servable_model(
            text_config, executor=PhotonicExecutor(num_cores=2), seed=0
        )
        return TextServable(model, pad_id=0)

    sequential = _run_all(text_servable(), prompts, 1)
    batched = _run_all(text_servable(), prompts, 8)
    text_ok = all(np.array_equal(s, b) for s, b in zip(sequential, batched))

    # Decode: 4 KV sessions x 3 steps; projections batch across sessions.
    decoder = DecoderConfig("bench-decode", depth=2, dim=16, heads=2, mlp_ratio=2.0)
    steps = [
        (f"session-{s}", rng.normal(size=16)) for _ in range(3) for s in range(4)
    ]
    payloads = [x for _, x in steps]
    sessions = [sid for sid, _ in steps]
    sequential = _run_all(
        DecodeServable(decoder, seed=0), payloads, 1, session_ids=sessions
    )
    batched = _run_all(
        DecodeServable(decoder, seed=0), payloads, 8, session_ids=sessions
    )
    decode_ok = all(np.array_equal(s, b) for s, b in zip(sequential, batched))

    # Prompt memoization: the repeat is a bit-identical cache hit.
    cache = SessionCache(capacity_bytes=1 << 20)
    engine = ServingEngine(
        VisionServable(_vision_model()),
        max_batch_size=4,
        clock=SimulatedClock(),
        cache=cache,
        close_executor=True,
    )
    with engine:
        first = engine.submit(images[0], cache_key="prompt-0")
        engine.run_until_idle()
        repeat = engine.submit(images[0], cache_key="prompt-0")
        cache_ok = (
            repeat.cache_hit
            and repeat.done()
            and np.array_equal(first.result(timeout=0), repeat.result(timeout=0))
            and engine.metrics.cache_hits == 1
        )
    return {
        "vision_bit_identical": bool(vision_ok),
        "text_ragged_bit_identical": bool(text_ok),
        "decode_sessions_bit_identical": bool(decode_ok),
        "cache_hit_bit_identical": bool(cache_ok),
    }


def throughput_curve() -> list[dict]:
    """Open-loop Poisson throughput per ``max_batch_size`` (best of 2)."""
    rng = np.random.default_rng(1)
    images = [rng.normal(size=(16, 16)) for _ in range(LOAD_REQUESTS)]
    rows = []
    for max_batch_size in BATCH_SIZES:
        best = None
        for repeat in range(2):
            gaps = poisson_gaps(
                LOAD_REQUESTS, LOAD_MEAN_GAP_S, np.random.default_rng(2)
            )
            engine = ServingEngine(
                VisionServable(_vision_model()),
                max_batch_size=max_batch_size,
                max_wait_us=500.0,
                queue_depth=2 * LOAD_REQUESTS,
                close_executor=True,
            )
            with engine:
                result = run_open_loop(engine, images, gaps)
            if best is None or result["throughput_rps"] > best["throughput_rps"]:
                best = result
        best["max_batch_size"] = max_batch_size
        rows.append(best)
    return rows


def closed_loop_row(max_batch_size: int = 8) -> dict:
    """Sustainable service rate: 8 users in submit-wait-repeat."""
    rng = np.random.default_rng(3)
    images = [rng.normal(size=(16, 16)) for _ in range(8)]
    engine = ServingEngine(
        VisionServable(_vision_model()),
        max_batch_size=max_batch_size,
        max_wait_us=500.0,
        close_executor=True,
    )
    with engine:
        result = run_closed_loop(engine, images, rounds=4)
    result["max_batch_size"] = max_batch_size
    return result


def simulated_metrics() -> dict:
    """Deterministic no-sleep metrics under a simulated clock."""
    clock = SimulatedClock()
    engine = ServingEngine(
        VisionServable(_vision_model()),
        policy=BatchingPolicy(max_batch_size=4, max_wait_us=2_000.0),
        clock=clock,
        close_executor=True,
    )
    rng = np.random.default_rng(4)
    with engine:
        for _ in range(4):  # full batch: dispatched without waiting
            engine.submit(rng.normal(size=(16, 16)))
        assert engine.step(force=False) == 4
        for _ in range(2):  # partial batch: dispatched when the wait expires
            engine.submit(rng.normal(size=(16, 16)))
        assert engine.step(force=False) == 0, "wait budget not yet expired"
        clock.advance(2.5e-3)
        assert engine.step(force=False) == 2
        snapshot = engine.metrics.snapshot()
    expected = {"4": 1, "2": 1}
    deterministic = (
        snapshot["batch_occupancy"] == expected
        and snapshot["completed"] == 6
        # The two waiting requests aged exactly 2.5 ms of virtual time.
        and abs(snapshot["latency_s"]["p99"] - 2.5e-3) < 1e-12
    )
    snapshot["deterministic"] = bool(deterministic)
    return snapshot


#: Multi-tenant decode mix (shared with bench_cluster.py's affinity
#: section via repro.serving.multi_tenant_arrivals).
MIX_TENANTS = (
    TenantSpec("chat-a", rate_rps=2000.0, weights={"decode": 1.0}, sessions=3),
    TenantSpec("chat-b", rate_rps=1000.0, weights={"decode": 1.0}, sessions=2),
)


def multi_tenant_mix() -> dict:
    """Seeded multi-tenant decode arrivals through one manual engine.

    The same generator drives ``bench_cluster.py``'s affinity section;
    here the gate is determinism on a single engine: two replays of an
    equal-seed mix must produce identical per-tenant counts and
    bit-identical outputs.
    """
    decoder = DecoderConfig("bench-serve-mix", depth=2, dim=16, heads=2, mlp_ratio=2.0)

    def replay():
        arrivals = multi_tenant_arrivals(
            MIX_TENANTS, horizon_s=10e-3, rng=np.random.default_rng(5)
        )
        engine = ServingEngine(
            DecodeServable(decoder, seed=0),
            max_batch_size=4,
            max_wait_us=0.0,
            queue_depth=len(arrivals),
            clock=SimulatedClock(),
        )
        per_tenant: dict[str, int] = {}
        outputs = []
        with engine:
            for arrival in arrivals:
                payload = np.random.default_rng(arrival.index).normal(size=16)
                handle = engine.submit(payload, session_id=arrival.session)
                engine.step(force=True)
                outputs.append(handle.result(timeout=0))
                per_tenant[arrival.tenant] = per_tenant.get(arrival.tenant, 0) + 1
        return per_tenant, outputs

    (counts_a, outputs_a), (counts_b, outputs_b) = replay(), replay()
    deterministic = counts_a == counts_b and all(
        np.array_equal(a, b) for a, b in zip(outputs_a, outputs_b)
    )
    return {
        "tenants": counts_a,
        "requests": sum(counts_a.values()),
        "deterministic": bool(deterministic),
    }


def run(assert_speedup: bool = True, out_path: str = "BENCH_serving.json") -> dict:
    equiv = batching_equivalence()
    print("Batching equivalence (dynamic batch == sequential, equal seeds)")
    for key, ok in equiv.items():
        print(f"  {key:32s} {ok}")
        assert ok, f"serving equivalence gate failed: {key}"

    print(
        f"\nOpen-loop Poisson throughput ({LOAD_REQUESTS} requests, "
        f"mean gap {LOAD_MEAN_GAP_S * 1e3:.2f} ms, {os.cpu_count() or 1} host CPU(s))"
    )
    curve = throughput_curve()
    for row in curve:
        print(
            f"  max_batch_size={row['max_batch_size']}: "
            f"{row['throughput_rps']:8.0f} req/s | "
            f"p50 {row['latency_p50_ms']:6.2f} ms | "
            f"p99 {row['latency_p99_ms']:6.2f} ms | "
            f"mean batch {row['mean_batch_size']:.2f}"
        )
    tp_single = curve[0]["throughput_rps"]
    tp_batched = curve[-1]["throughput_rps"]
    gain = tp_batched / tp_single
    floor = MIN_BATCHING_GAIN if assert_speedup else 1.0
    print(f"  batching gain (mbs=8 vs mbs=1): {gain:.2f}x (floor {floor:.2f}x)")
    assert tp_batched > tp_single, (
        f"throughput must increase strictly from max_batch_size=1 "
        f"({tp_single:.0f} req/s) to max_batch_size=8 ({tp_batched:.0f} req/s)"
    )
    assert gain >= floor, (
        f"batching gain {gain:.2f}x below the {floor:.2f}x floor"
    )

    closed = closed_loop_row()
    print(
        f"\nClosed-loop ({closed['concurrency']} users x 4 rounds): "
        f"{closed['throughput_rps']:.0f} req/s, "
        f"p50 {closed['latency_p50_ms']:.2f} ms"
    )

    simulated = simulated_metrics()
    print(
        "\nSimulated-clock metrics deterministic: "
        f"{simulated['deterministic']} (occupancy {simulated['batch_occupancy']})"
    )
    assert simulated["deterministic"], "simulated-clock metrics must be exact"

    mix = multi_tenant_mix()
    print(
        f"\nMulti-tenant decode mix deterministic: {mix['deterministic']} "
        f"({mix['requests']} requests, per-tenant {mix['tenants']})"
    )
    assert mix["deterministic"], "equal-seed tenant mixes must replay exactly"

    report = {
        "host_cpus": os.cpu_count() or 1,
        "equivalence": equiv,
        "throughput": curve,
        "batching_gain": gain,
        "closed_loop": closed,
        "simulated_metrics": simulated,
        "multi_tenant_mix": mix,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_serving(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["batching_gain"] = result["batching_gain"]
    benchmark.extra_info["throughput"] = result["throughput"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="relax the batching-gain margin (equivalence and the strict "
        "1-vs-8 throughput ordering always apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_speedup=not cli.report_only, out_path=cli.out)
