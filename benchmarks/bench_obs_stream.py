"""Online-telemetry benchmark: streaming export, SLO alerts, postmortems.

Sections, each with a hard gate and a measurement:

* **Bounded streaming residency** (always enforced) — a
  :class:`~repro.obs.stream.StreamingSpanWriter` under the demo
  workload emits exactly the batch exporter's canonical lines (sorted:
  end-order vs id-order) while holding only *open* spans in memory:
  ``peak_open`` does not grow when the workload doubles, and the
  writer is empty after close.

* **Sampled determinism + strict subset** (always enforced) — head
  sampling at rate R streams byte-identical output across reruns,
  matches :func:`~repro.obs.stream.sampled_lines` over the batch
  collector, and is a strict subset of the unsampled dump (same span
  ids/timestamps — sampling filters emission, never content).

* **Reproducible SLO alert ledger** (always enforced) — a virtual-time
  fleet run that overloads one replica drives the p95-latency
  objective's multi-window burn rates over their ceilings; the
  resulting :class:`~repro.obs.timeseries.SLOMonitor` ledger is
  non-empty and *exactly* equal across reruns (times, burns, order).

* **Flight-recorder postmortem** (always enforced) — injecting
  :meth:`ServingCluster.fail_replica` mid-run freezes a bundle with
  the recent span ring, the registry snapshot, and the fleet snapshot,
  and dumps it to ``postmortem-001.json`` (the CI artifact).

* **Streaming overhead ceiling** (nightly) — the traced demo workload
  with a streaming writer may cost at most
  :data:`MAX_STREAM_OVERHEAD` times the batch-collector run *including
  its end-of-run JSONL dump* (same bytes, different schedule).
  ``--report-only`` records the ratio without asserting.

Emits a ``BENCH_obs_stream.json`` artifact (``--out PATH`` to
relocate).
"""

import io
import json
import os
import time

import numpy as np

from repro.obs import (
    FlightRecorder,
    SLOMonitor,
    StreamingSpanWriter,
    TimeSeriesRecorder,
    TraceSampler,
    Tracer,
    latency_objective,
    sampled_lines,
    span_lines,
)
from repro.obs.timeseries import BurnWindow
from repro.obs.demo import run_trace_workload, run_workload

#: Demo-workload shape shared with ``bench_obs.py``'s gates.
DEMO_SEED = 0
DEMO_REQUESTS = 24
DEMO_BATCH = 4

#: Head-sampling rate of the determinism/subset gates.
SAMPLE_RATE = 2

#: Nightly ceiling on streamed-over-batch traced wall-clock.
MAX_STREAM_OVERHEAD = 1.10

#: Virtual-time burn windows sized for millisecond-scale demo runs.
BENCH_WINDOWS = (
    BurnWindow("fast", long_s=2e-3, short_s=0.5e-3, max_burn=2.0),
    BurnWindow("slow", long_s=8e-3, short_s=2e-3, max_burn=1.5),
)


def _stream_demo(requests: int, sampler: TraceSampler | None = None):
    """Run the demo workload through a streaming writer; (writer, text)."""
    sink = io.StringIO()
    writer = StreamingSpanWriter(sink, sampler=sampler)
    run_workload(
        seed=DEMO_SEED, requests=requests, max_batch_size=DEMO_BATCH,
        sink=writer,
    )
    writer.close()
    return writer, sink.getvalue()


def streaming_residency() -> dict:
    """Streamed lines == batch lines; open-span residency is bounded."""
    writer, text = _stream_demo(DEMO_REQUESTS)
    collector = run_trace_workload(
        seed=DEMO_SEED, requests=DEMO_REQUESTS, max_batch_size=DEMO_BATCH
    )
    batch = sorted(span_lines(collector))
    streamed = sorted(text.splitlines())
    double_writer, _ = _stream_demo(2 * DEMO_REQUESTS)
    return {
        "streamed_equals_batch": streamed == batch,
        "spans": writer.spans_seen,
        "peak_open": writer.peak_open,
        "open_after_close": writer.open_spans,
        "doubled_spans": double_writer.spans_seen,
        "doubled_peak_open": double_writer.peak_open,
        # Residency is the *open* span set (queue depth), not the span
        # count: doubling the workload must shrink the open fraction —
        # a writer that retained everything would hold it flat at 1.0.
        "residency_bounded": (
            double_writer.spans_seen > writer.spans_seen
            and 4 * writer.peak_open < writer.spans_seen
            and double_writer.peak_open * writer.spans_seen
            < writer.peak_open * double_writer.spans_seen
        ),
    }


def sampled_subset() -> dict:
    """Sampling is byte-deterministic and a strict subset of the dump."""
    first_writer, first = _stream_demo(
        DEMO_REQUESTS, TraceSampler(SAMPLE_RATE)
    )
    _, second = _stream_demo(DEMO_REQUESTS, TraceSampler(SAMPLE_RATE))
    collector = run_trace_workload(
        seed=DEMO_SEED, requests=DEMO_REQUESTS, max_batch_size=DEMO_BATCH
    )
    batch_sampled = sampled_lines(collector, TraceSampler(SAMPLE_RATE))
    full = set(span_lines(collector))
    streamed = set(first.splitlines())
    return {
        "byte_identical": first == second,
        "matches_batch_sampler": sorted(first.splitlines()) == sorted(
            batch_sampled
        ),
        "strict_subset": streamed < full,
        "spans_written": first_writer.spans_written,
        "spans_seen": first_writer.spans_seen,
        "spans_dropped": first_writer.spans_dropped,
    }


def _run_slo_cluster() -> tuple[list[dict], list[dict]]:
    """One overloaded virtual fleet run; (alert ledger, status rows)."""
    from repro.cluster import (
        ClusterConfig,
        ServiceModel,
        ServingCluster,
        run_virtual_open_loop,
    )
    from repro.obs.demo import TracedMatmulServable
    from repro.serving import EngineConfig, SimulatedClock

    clock = SimulatedClock()
    cluster = ServingCluster(
        lambda replica_id: TracedMatmulServable(seed=11),
        config=ClusterConfig(
            replicas=1,
            policy="least_outstanding",
            engine=EngineConfig(
                max_batch_size=4, max_wait_us=200.0, queue_depth=256
            ),
            # Every batch costs >= 1 ms of virtual service time, so an
            # open-loop burst pushes latencies past the 1 ms objective.
            service_model=ServiceModel(base_s=1e-3, per_request_s=250e-6),
        ),
        clock=clock,
    )
    monitor = SLOMonitor(
        [
            latency_objective(
                "p95-latency", "cluster_request_latency_seconds", 1e-3
            )
        ],
        TimeSeriesRecorder(cluster.metrics.registry, interval_s=0.2e-3),
        windows=BENCH_WINDOWS,
    )
    # The monitor reads the cluster's own registry, so it attaches after
    # construction; maintain() ticks it on every step.
    cluster.slo_monitor = monitor
    rng = np.random.default_rng(13)
    payloads = [rng.uniform(-1.0, 1.0, (4, 16)) for _ in range(48)]
    gaps = rng.exponential(1e-4, size=len(payloads))
    with cluster:
        run_virtual_open_loop(cluster, payloads, gaps)
    return monitor.ledger_dicts(), monitor.status()


def slo_ledger() -> dict:
    """Burn-rate alerts fire under overload, reproducibly."""
    first, status = _run_slo_cluster()
    second, _ = _run_slo_cluster()
    return {
        "alerts": len(first),
        "fired": sum(1 for alert in first if alert["state"] == "firing"),
        "ledger_reproducible": first == second,
        "ledger_nonempty": bool(first),
        "final_status": status,
        "ledger": first,
    }


def flight_recorder_postmortem(dump_dir: str = ".") -> dict:
    """fail_replica() freezes and dumps a postmortem bundle."""
    from repro.cluster import (
        ClusterConfig,
        ServiceModel,
        ServingCluster,
    )
    from repro.obs.demo import TracedMatmulServable
    from repro.serving import EngineConfig, SimulatedClock

    clock = SimulatedClock()
    recorder = FlightRecorder(capacity=128, clock=clock, dump_dir=dump_dir)
    tracer = Tracer(clock=clock)
    recorder.attach(tracer)
    cluster = ServingCluster(
        lambda replica_id: TracedMatmulServable(seed=11),
        config=ClusterConfig(
            replicas=2,
            policy="least_outstanding",
            engine=EngineConfig(max_batch_size=4, max_wait_us=500.0),
            service_model=ServiceModel(),
        ),
        clock=clock,
        tracer=tracer,
        recorder=recorder,
    )
    rng = np.random.default_rng(29)
    with cluster:
        for index in range(16):
            clock.advance(float(rng.exponential(1e-4)))
            cluster.submit(rng.uniform(-1.0, 1.0, (4, 16)))
            cluster.step(force=False)
            if index == 8:
                rerouted = cluster.fail_replica(0)
        cluster.run_until_idle()
    bundle = recorder.bundles[0] if recorder.bundles else None
    return {
        "bundles": len(recorder.bundles),
        "reason": bundle["reason"] if bundle else None,
        "rerouted": rerouted,
        "bundle_spans": len(bundle["spans"]) if bundle else 0,
        "bundle_events": len(bundle["events"]) if bundle else 0,
        "has_registry": bool(bundle and bundle["registry"] is not None),
        "has_snapshot": bool(bundle and bundle["snapshot"] is not None),
        "dumped": [str(path) for path in recorder.dumped],
    }


#: Overhead-gate servable shape: per-request math heavy enough that
#: per-span costs amortize (the regime streaming targets — the tiny
#: demo shape would measure serializer cache effects, not streaming).
HEAD_M = 16
HEAD_D = 64
HEAD_N = 32


def _overhead_run(sink=None):
    """The demo loop on the heavier servable; returns the collector."""
    from repro.obs.demo import TracedMatmulServable, trace_workload_config
    from repro.serving import ServingEngine, SimulatedClock

    clock = SimulatedClock()
    tracer = (
        Tracer(clock=clock, collector=sink)
        if sink is not None
        else Tracer(clock=clock)
    )
    servable = TracedMatmulServable(
        seed=DEMO_SEED, m=HEAD_M, d=HEAD_D, n=HEAD_N
    )
    rng = np.random.default_rng(DEMO_SEED + 2)
    engine = ServingEngine(
        servable,
        config=trace_workload_config(DEMO_BATCH),
        clock=clock,
        tracer=tracer,
        close_executor=True,
    )
    with engine:
        for index in range(2 * DEMO_REQUESTS):
            engine.submit(
                rng.uniform(-1.0, 1.0, (HEAD_M, HEAD_D)),
                session_id=f"session-{index % 3}",
            )
            if index % DEMO_BATCH == DEMO_BATCH - 1:
                engine.step()
        engine.run_until_idle()
    return tracer.collector


def stream_overhead(repeats: int = 5) -> dict:
    """Best-of wall-clock: streamed vs batch-dumped traced workload."""

    def batch_run() -> str:
        lines = span_lines(_overhead_run())
        return "\n".join(lines) + ("\n" if lines else "")

    def stream_run() -> str:
        sink = io.StringIO()
        with StreamingSpanWriter(sink) as writer:
            _overhead_run(sink=writer)
        return sink.getvalue()

    def best_of(fn) -> float:
        fn()
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return min(samples)

    batch_s = best_of(batch_run)
    stream_s = best_of(stream_run)
    return {
        "batch_s": batch_s,
        "stream_s": stream_s,
        "overhead_ratio": stream_s / batch_s,
        "ceiling": MAX_STREAM_OVERHEAD,
    }


def run(
    assert_overhead: bool = True, out_path: str = "BENCH_obs_stream.json"
) -> dict:
    print("Bounded streaming residency")
    residency = streaming_residency()
    print(
        f"  streamed == batch lines       : "
        f"{residency['streamed_equals_batch']}"
    )
    print(
        f"  peak open {residency['peak_open']} of {residency['spans']} spans"
        f" | doubled workload: {residency['doubled_peak_open']} of "
        f"{residency['doubled_spans']}"
    )
    assert residency["streamed_equals_batch"], "streamed lines drifted"
    assert residency["open_after_close"] == 0, "writer leaked open spans"
    assert residency["residency_bounded"], (
        "peak open spans grew with workload length"
    )

    sampled = sampled_subset()
    print(
        f"\nSampled streaming (1 in {SAMPLE_RATE}): "
        f"{sampled['spans_written']}/{sampled['spans_seen']} spans kept"
    )
    print(f"  rerun byte-identical          : {sampled['byte_identical']}")
    print(f"  matches batch sampler         : {sampled['matches_batch_sampler']}")
    print(f"  strict subset of full dump    : {sampled['strict_subset']}")
    assert sampled["byte_identical"], "sampled stream drifted across reruns"
    assert sampled["matches_batch_sampler"], (
        "streamed sampling disagrees with sampled_lines()"
    )
    assert sampled["strict_subset"], "sampled output is not a strict subset"

    slo = slo_ledger()
    print(
        f"\nSLO burn-rate ledger: {slo['alerts']} alert(s), "
        f"{slo['fired']} firing"
    )
    print(f"  ledger reproducible           : {slo['ledger_reproducible']}")
    assert slo["ledger_nonempty"], "overload fired no burn-rate alerts"
    assert slo["fired"] >= 1, "no alert reached the firing state"
    assert slo["ledger_reproducible"], "alert ledger drifted across reruns"

    postmortem = flight_recorder_postmortem()
    print(
        f"\nFlight recorder: {postmortem['bundles']} bundle(s), reason "
        f"{postmortem['reason']!r}, {postmortem['bundle_spans']} spans, "
        f"{postmortem['rerouted']} rerouted"
    )
    print(f"  dumped: {postmortem['dumped']}")
    assert postmortem["bundles"] == 1, "replica failure froze no bundle"
    assert postmortem["reason"] == "replica_failed", "wrong bundle reason"
    assert postmortem["bundle_spans"] > 0, "bundle carries no spans"
    assert postmortem["has_registry"], "bundle misses the registry snapshot"
    assert postmortem["has_snapshot"], "bundle misses the fleet snapshot"
    assert postmortem["dumped"], "no postmortem artifact written"

    cpus = os.cpu_count() or 1
    overhead = stream_overhead()
    print(f"\nStreaming overhead ({cpus} host CPU(s))")
    print(
        f"  batch {overhead['batch_s'] * 1e3:7.2f} ms | "
        f"streamed {overhead['stream_s'] * 1e3:7.2f} ms "
        f"({overhead['overhead_ratio']:.3f}x, ceiling "
        f"{MAX_STREAM_OVERHEAD:.2f}x)"
    )
    if assert_overhead:
        assert overhead["overhead_ratio"] <= MAX_STREAM_OVERHEAD, (
            f"streaming costs {overhead['overhead_ratio']:.3f}x the batch "
            f"run (ceiling {MAX_STREAM_OVERHEAD:.2f}x)"
        )

    report = {
        "host_cpus": cpus,
        "residency": residency,
        "sampled": sampled,
        "slo": slo,
        "postmortem": postmortem,
        "overhead": overhead,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_obs_stream(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["overhead_ratio"] = (
        result["overhead"]["overhead_ratio"]
    )
    benchmark.extra_info["peak_open"] = result["residency"]["peak_open"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="skip the overhead ceiling (residency/sampling/SLO/"
        "postmortem gates still apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_obs_stream.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_overhead=not cli.report_only, out_path=cli.out)
