"""Future-work feature: pipelining the photonic and digital stages.

The paper notes "the deep pipeline of the photonic/digital processing
unit is not adopted in this paper, which can be employed to further
improve the system performance".  This bench quantifies the overlap:
with the default digital provisioning the non-GEMM work hides entirely
behind the photonic GEMMs, validating Table V's GEMM-only latency.
"""

from repro.analysis import render_table
from repro.arch import DigitalUnitModel, lt_base, pipeline_report
from repro.workloads import bert_base, deit_base, deit_tiny


def bench_pipeline_overlap(benchmark):
    accelerator = lt_base(4)

    def sweep():
        rows = []
        for model in (deit_tiny(), deit_base(), bert_base()):
            report = pipeline_report(model, accelerator)
            rows.append(
                {
                    "model": model.name,
                    "gemm_ms": report.gemm_time * 1e3,
                    "digital_ms": report.digital_time * 1e3,
                    "sequential_ms": report.sequential_latency * 1e3,
                    "pipelined_ms": report.pipelined_latency * 1e3,
                    "speedup": report.speedup,
                    "digital_hidden": report.digital_hidden,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for row in rows:
        assert row["speedup"] > 1.0
        assert row["digital_ms"] < row["gemm_ms"]  # Table V assumption

    # An under-provisioned digital unit becomes the pipeline bottleneck.
    weak = pipeline_report(
        deit_tiny(), accelerator, digital=DigitalUnitModel(lanes_per_tile=8)
    )
    assert not weak.digital_hidden

    benchmark.extra_info["deit_tiny_speedup"] = rows[0]["speedup"]
    print()
    print(render_table(rows, title="Pipelined photonic/digital execution"))
