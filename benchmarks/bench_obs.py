"""Observability benchmark: tracing is free when off, cheap when on.

Sections, each with a hard gate and a measurement:

* **Disabled-tracer bit-equality** (always enforced) — with the
  default no-op tracer, every pre-existing equality suite still holds,
  and turning tracing ON changes *observability only*, never math:

  - hot path: ``pipelined_matmul`` under an active
    :class:`~repro.obs.trace.Tracer` is bit-identical to the untraced
    run and to the sequential (depth-0) chunk oracle — the traced
    twin consumes the RNG through the same fused per-chunk draws;
  - sharded: a multi-core :class:`~repro.core.sharding.ShardedDPTC`
    matmul is bit-identical traced vs untraced;
  - serving: the canonical demo workload
    (:func:`repro.obs.demo.run_workload`) returns bit-identical
    request results and an identical metrics snapshot traced vs
    untraced under a :class:`~repro.serving.clock.SimulatedClock`;
  - cluster: a virtual-time fleet run returns identical results and
    an identical fleet snapshot traced vs untraced.

* **Span-tree shape** (always enforced) — the traced demo workload
  emits the full promised chain with parent links intact::

      request (submit / dispatch / complete events)
      engine.iteration -> engine.batch -> shard.matmul -> shard.core
          -> hotpath.matmul -> stage.{sample,encode,compute,detect}

* **Byte determinism** (always enforced) — the JSONL dump of the demo
  workload is byte-for-byte identical across reruns for equal seeds
  (the ``repro trace --seed S`` contract).

* **Enabled-tracer overhead ceiling** (nightly) — an actively traced
  hot-path run may cost at most :data:`MAX_TRACED_OVERHEAD` times the
  untraced run on the headline noisy matmul.  ``--report-only`` (fast
  lane, 1-CPU runners) records the ratio without asserting.

Emits a ``BENCH_obs.json`` artifact (``--out PATH`` to relocate) with
every number printed.
"""

import json
import os
import time

import numpy as np

from repro.core import DPTC, NoiseModel, ShardedDPTC
from repro.core.hotpath import pipelined_matmul
from repro.obs import Tracer, to_jsonl
from repro.obs.demo import run_trace_workload, run_workload

#: Headline noisy batched case for equality + overhead — the same
#: attention-shaped stack ``bench_hotpath.py`` profiles, so the
#: overhead ratio is measured on the shape the hot path is tuned for
#: (per-chunk span cost amortizes over real per-chunk math).
HEAD_BATCH = 64
HEAD_M = 32
HEAD_D = 64
HEAD_N = 32
HEAD_CHUNK = 8

#: Nightly ceiling on traced-over-untraced hot-path wall-clock.
MAX_TRACED_OVERHEAD = 1.10

#: Demo-workload shape shared by the span-tree and determinism gates.
DEMO_SEED = 0
DEMO_REQUESTS = 12
DEMO_BATCH = 4

#: The stage spans every traced chunk must emit.
STAGES = ("stage.sample", "stage.encode", "stage.compute", "stage.detect")


def _operands() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    a = rng.normal(size=(HEAD_BATCH, HEAD_M, HEAD_D))
    b = rng.normal(size=(HEAD_BATCH, HEAD_D, HEAD_N))
    return a, b


def hotpath_equality() -> dict:
    """Traced == untraced == sequential oracle on the noisy hot path."""
    core = DPTC(noise=NoiseModel.paper_default())
    a, b = _operands()

    def run(depth: int) -> np.ndarray:
        return pipelined_matmul(
            core, a, b, np.random.default_rng(3),
            chunk_size=HEAD_CHUNK, pipeline_depth=depth,
        )

    untraced = run(1)
    oracle = run(0)
    tracer = Tracer()
    with tracer.activate():
        traced = run(1)
        traced_oracle = run(0)

    sharded = ShardedDPTC(
        num_cores=2, noise=NoiseModel.paper_default(), chunk_size=HEAD_CHUNK
    )
    try:
        plain = sharded.matmul(a, b, rng=np.random.default_rng(5))
        with tracer.activate():
            shard_traced = sharded.matmul(a, b, rng=np.random.default_rng(5))
    finally:
        sharded.close()

    return {
        "traced_equals_untraced": bool(np.array_equal(traced, untraced)),
        "traced_equals_oracle": bool(np.array_equal(traced_oracle, oracle)),
        "untraced_equals_oracle": bool(np.array_equal(untraced, oracle)),
        "sharded_traced_equal": bool(np.array_equal(shard_traced, plain)),
        "spans_emitted": len(tracer.collector),
    }


def serving_equality() -> dict:
    """Demo workload: identical results + snapshot, traced vs untraced."""
    _, plain_results, plain_snap = run_workload(
        traced=False, seed=DEMO_SEED, requests=DEMO_REQUESTS,
        max_batch_size=DEMO_BATCH,
    )
    collector, traced_results, traced_snap = run_workload(
        traced=True, seed=DEMO_SEED, requests=DEMO_REQUESTS,
        max_batch_size=DEMO_BATCH,
    )
    results_equal = len(plain_results) == len(traced_results) and all(
        np.array_equal(x, y) for x, y in zip(plain_results, traced_results)
    )
    return {
        "results_bit_equal": bool(results_equal),
        "snapshots_equal": plain_snap == traced_snap,
        "spans_emitted": len(collector),
    }


def _run_cluster(traced: bool) -> tuple[list, dict]:
    from repro.cluster import (
        ClusterConfig,
        ServiceModel,
        ServingCluster,
        run_virtual_open_loop,
    )
    from repro.obs.demo import TracedMatmulServable
    from repro.serving import EngineConfig, SimulatedClock

    config = ClusterConfig(
        replicas=2,
        policy="least_outstanding",
        engine=EngineConfig(max_batch_size=4, max_wait_us=500.0),
        service_model=ServiceModel(),
    )
    clock = SimulatedClock()
    tracer = Tracer(clock=clock) if traced else None
    cluster = ServingCluster(
        lambda replica_id: TracedMatmulServable(seed=11),
        config=config,
        clock=clock,
        tracer=tracer,
    )
    rng = np.random.default_rng(13)
    payloads = [rng.uniform(-1.0, 1.0, (4, 16)) for _ in range(16)]
    gaps = rng.exponential(1e-4, size=len(payloads))
    with cluster:
        report = run_virtual_open_loop(cluster, payloads, gaps)
        results = [handle.result(timeout=0) for handle in report.pop("handles")]
        snapshot = cluster.snapshot()
    return results, snapshot


def cluster_equality() -> dict:
    """Virtual-time fleet run: identical results + fleet snapshot."""
    plain_results, plain_snap = _run_cluster(traced=False)
    traced_results, traced_snap = _run_cluster(traced=True)
    results_equal = len(plain_results) == len(traced_results) and all(
        np.array_equal(x, y) for x, y in zip(plain_results, traced_results)
    )
    return {
        "results_bit_equal": bool(results_equal),
        "snapshots_equal": plain_snap == traced_snap,
    }


def span_tree_shape() -> dict:
    """The demo trace covers request -> iteration -> shard -> stage."""
    collector = run_trace_workload(
        seed=DEMO_SEED, requests=DEMO_REQUESTS, max_batch_size=DEMO_BATCH
    )
    by_id = {span.span_id: span for span in collector.spans()}
    by_name: dict[str, list] = {}
    for span in collector.spans():
        by_name.setdefault(span.name, []).append(span)

    def parents_are(name: str, parent_name: str) -> bool:
        spans = by_name.get(name, [])
        return bool(spans) and all(
            span.parent_id is not None
            and by_id[span.parent_id].name == parent_name
            for span in spans
        )

    requests = by_name.get("request", [])
    request_events = [
        {event.name for event in span.events} for span in requests
    ]
    counts = {name: len(spans) for name, spans in sorted(by_name.items())}
    return {
        "counts": counts,
        "requests_are_roots": bool(requests)
        and all(span.parent_id is None for span in requests),
        "request_count": len(requests),
        "request_lifecycle_events": bool(request_events)
        and all(
            {"submit", "dispatch", "complete"} <= names
            for names in request_events
        ),
        "chain": {
            "engine.batch<-engine.iteration": parents_are(
                "engine.batch", "engine.iteration"
            ),
            "shard.matmul<-engine.batch": parents_are(
                "shard.matmul", "engine.batch"
            ),
            "shard.core<-shard.matmul": parents_are(
                "shard.core", "shard.matmul"
            ),
            "hotpath.matmul<-shard.core": parents_are(
                "hotpath.matmul", "shard.core"
            ),
            **{
                f"{stage}<-hotpath.matmul": parents_are(
                    stage, "hotpath.matmul"
                )
                for stage in STAGES
            },
        },
    }


def byte_determinism() -> dict:
    """Equal seeds -> byte-identical JSONL dumps across reruns."""
    first = to_jsonl(
        run_trace_workload(
            seed=DEMO_SEED, requests=DEMO_REQUESTS, max_batch_size=DEMO_BATCH
        )
    )
    second = to_jsonl(
        run_trace_workload(
            seed=DEMO_SEED, requests=DEMO_REQUESTS, max_batch_size=DEMO_BATCH
        )
    )
    other_shape = to_jsonl(
        run_trace_workload(
            seed=DEMO_SEED, requests=DEMO_REQUESTS + 1,
            max_batch_size=DEMO_BATCH,
        )
    )
    return {
        "byte_identical": first == second,
        "bytes": len(first.encode()),
        "shape_sensitive": first != other_shape,
    }


def traced_overhead(repeats: int = 5) -> dict:
    """Best-of wall-clock of the traced vs untraced noisy hot path."""
    core = DPTC(noise=NoiseModel.paper_default())
    a, b = _operands()

    def run() -> np.ndarray:
        return pipelined_matmul(
            core, a, b, np.random.default_rng(3),
            chunk_size=HEAD_CHUNK, pipeline_depth=0,
        )

    def best_of(fn) -> float:
        fn()
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return min(samples)

    untraced_s = best_of(run)

    def run_traced() -> np.ndarray:
        tracer = Tracer()
        with tracer.activate():
            return run()

    traced_s = best_of(run_traced)
    return {
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead_ratio": traced_s / untraced_s,
        "ceiling": MAX_TRACED_OVERHEAD,
    }


def run(assert_overhead: bool = True, out_path: str = "BENCH_obs.json") -> dict:
    print("Disabled-tracer bit-equality")
    hotpath = hotpath_equality()
    for key in (
        "traced_equals_untraced", "traced_equals_oracle",
        "untraced_equals_oracle", "sharded_traced_equal",
    ):
        print(f"  hotpath {key:24s}: {hotpath[key]}")
        assert hotpath[key], f"hot-path equality broke: {key}"

    serving = serving_equality()
    print(f"  serving results bit-equal     : {serving['results_bit_equal']}")
    print(f"  serving snapshots equal       : {serving['snapshots_equal']}")
    assert serving["results_bit_equal"], "tracing changed serving results"
    assert serving["snapshots_equal"], "tracing changed the metrics snapshot"

    cluster = cluster_equality()
    print(f"  cluster results bit-equal     : {cluster['results_bit_equal']}")
    print(f"  cluster snapshots equal       : {cluster['snapshots_equal']}")
    assert cluster["results_bit_equal"], "tracing changed cluster results"
    assert cluster["snapshots_equal"], "tracing changed the fleet snapshot"

    tree = span_tree_shape()
    print("\nSpan-tree shape "
          f"({sum(tree['counts'].values())} spans: {tree['counts']})")
    print(f"  requests are roots            : {tree['requests_are_roots']}")
    print(f"  request lifecycle events      : {tree['request_lifecycle_events']}")
    assert tree["requests_are_roots"], "request spans are not roots"
    assert tree["request_count"] == DEMO_REQUESTS, "missing request spans"
    assert tree["request_lifecycle_events"], (
        "request spans miss submit/dispatch/complete events"
    )
    for link, intact in tree["chain"].items():
        print(f"  {link:34s}: {intact}")
        assert intact, f"span parent link broke: {link}"

    determinism = byte_determinism()
    print(f"\nByte determinism ({determinism['bytes']} JSONL bytes)")
    print(f"  rerun byte-identical          : {determinism['byte_identical']}")
    print(f"  different workload differs    : {determinism['shape_sensitive']}")
    assert determinism["byte_identical"], "trace JSONL drifted across reruns"
    assert determinism["shape_sensitive"], "trace JSONL ignores the workload"

    cpus = os.cpu_count() or 1
    overhead = traced_overhead()
    print(f"\nEnabled-tracer overhead ({cpus} host CPU(s))")
    print(
        f"  untraced {overhead['untraced_s'] * 1e3:7.2f} ms | "
        f"traced {overhead['traced_s'] * 1e3:7.2f} ms "
        f"({overhead['overhead_ratio']:.3f}x, ceiling "
        f"{MAX_TRACED_OVERHEAD:.2f}x)"
    )
    if assert_overhead:
        assert overhead["overhead_ratio"] <= MAX_TRACED_OVERHEAD, (
            f"traced hot path costs {overhead['overhead_ratio']:.3f}x the "
            f"untraced run (ceiling {MAX_TRACED_OVERHEAD:.2f}x)"
        )

    report = {
        "host_cpus": cpus,
        "hotpath_equality": hotpath,
        "serving_equality": serving,
        "cluster_equality": cluster,
        "span_tree": tree,
        "determinism": determinism,
        "overhead": overhead,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_obs(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["overhead_ratio"] = (
        result["overhead"]["overhead_ratio"]
    )
    benchmark.extra_info["trace_bytes"] = result["determinism"]["bytes"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="skip the overhead ceiling (equality/shape/determinism "
        "gates still apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_obs.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_overhead=not cli.report_only, out_path=cli.out)
