"""Fig. 10 — performance/efficiency scaling of the optical computing part.

Paper: TOPS, TOPS/W and TOPS/mm^2 increase with core size while
TOPS/W/mm^2 decreases (the ADC/DAC bottleneck).
"""

from repro.analysis import fig10_efficiency_scaling, render_table


def bench_fig10_efficiency_scaling(benchmark):
    rows = benchmark.pedantic(fig10_efficiency_scaling, rounds=1, iterations=1)

    tops = [row["tops"] for row in rows]
    tops_per_w = [row["tops_per_w"] for row in rows]
    tops_per_mm2 = [row["tops_per_mm2"] for row in rows]
    per_area_eff = [row["tops_per_w_mm2"] for row in rows]

    assert tops == sorted(tops)
    assert tops_per_w[-1] > tops_per_w[0]
    assert tops_per_mm2[-1] > tops_per_mm2[0]
    assert per_area_eff[-1] < per_area_eff[0]

    benchmark.extra_info["tops_at_largest"] = tops[-1]
    print()
    print(render_table(rows, title="Fig. 10: efficiency scaling (optical part)"))
