"""Cluster serving benchmark: routing equivalence + fleet scaling gates.

Everything runs under a :class:`SimulatedClock` (zero sleeps, virtual
service times), so every gate is bit-deterministic and holds on a 1-CPU
runner.  Sections, each with a hard gate:

* **Routing equivalence** — every dispatch policy (``round_robin``,
  ``least_outstanding``, ``session_affinity``) must produce results
  *bit-identical* to sequential single-engine execution for equal
  seeds, on vision (fixed-shape images), text (**ragged** prompts), and
  multi-session decode (KV streams; sessions migrate wholesale between
  replicas, so even non-sticky policies preserve bits).
* **Fleet scaling** — open-loop Poisson load over a
  :class:`ServiceModel`: virtual fleet throughput must increase
  strictly from 1 to 2 to 4 replicas (replicas overlap in virtual
  time), with a margin floor on the 4-vs-1 gain that ``--report-only``
  relaxes.
* **Affinity hit rate** — on a multi-tenant decode mix,
  ``session_affinity`` must beat ``round_robin`` on the affinity hit
  rate (the owner-routed fraction of session steps) while staying
  bit-identical to it.
* **Autoscaler determinism** — a bursty schedule under a latency SLO
  must produce scale-up, drain, and retire events, and the whole event
  log must replay identically from equal seeds.

Emits a ``BENCH_cluster.json`` artifact (``--out PATH`` to relocate).
"""

import json

import numpy as np

from repro.cluster import (
    AutoscalerPolicy,
    ServiceModel,
    ServingCluster,
    run_virtual_open_loop,
    run_virtual_schedule,
)
from repro.neural.photonic import PhotonicExecutor
from repro.neural.vision import TinyViT
from repro.serving import (
    DecodeServable,
    ServingEngine,
    SimulatedClock,
    TenantSpec,
    TextServable,
    VisionServable,
    multi_tenant_arrivals,
)
from repro.workloads.llm import DecoderConfig
from repro.workloads.transformer import KIND_TEXT, TransformerConfig, servable_model

#: Every routing policy the equivalence gate covers.
POLICIES = ("round_robin", "least_outstanding", "session_affinity")

#: Replica counts of the fleet-scaling curve.
FLEET_SIZES = (1, 2, 4)

#: Open-loop Poisson load of the scaling curve (virtual time).  The
#: mean gap keeps the run service-dominated (not arrival-limited), so
#: extra replicas translate into throughput rather than idle capacity.
LOAD_REQUESTS = 64
LOAD_MEAN_GAP_S = 0.05e-3

#: Virtual service model: batching amortizes base_s, replicas overlap.
SERVICE_MODEL = ServiceModel(base_s=1e-3, per_request_s=0.25e-3)

#: Throughput margin of 4 replicas over 1 (relaxed by --report-only).
MIN_FLEET_GAIN = 2.0

DECODER = DecoderConfig("bench-cluster-decode", depth=2, dim=16, heads=2, mlp_ratio=2.0)


def vision_factory(replica_id: int) -> VisionServable:
    """Equal-seed replicas: every one computes bit-identical logits."""
    model = TinyViT(
        image_size=16,
        patch_size=4,
        dim=32,
        depth=1,
        heads=2,
        n_classes=4,
        mlp_ratio=2.0,
        executor=PhotonicExecutor(num_cores=2),
        seed=0,
    )
    return VisionServable(model)


def text_factory(replica_id: int) -> TextServable:
    config = TransformerConfig(
        "bench-cluster-bert", depth=1, dim=32, heads=2, seq_len=17,
        mlp_ratio=2.0, kind=KIND_TEXT, n_classes=2,
    )
    model = servable_model(config, executor=PhotonicExecutor(num_cores=2), seed=0)
    return TextServable(model, pad_id=0)


def decode_factory(replica_id: int) -> DecodeServable:
    return DecodeServable(DECODER, seed=0)


def _sequential(factory, payloads, session_ids=None) -> list:
    """Single-engine, batch-size-1 reference run (the ground truth)."""
    engine = ServingEngine(
        factory(0),
        max_batch_size=1,
        max_wait_us=0.0,
        queue_depth=len(payloads),
        clock=SimulatedClock(),
        close_executor=True,
    )
    with engine:
        handles = [
            engine.submit(
                payload,
                session_id=None if session_ids is None else session_ids[i],
            )
            for i, payload in enumerate(payloads)
        ]
        engine.run_until_idle()
        return [handle.result(timeout=0) for handle in handles]


def _clustered(factory, payloads, policy, session_ids=None, replicas=3) -> list:
    """3-replica cluster run; decode steps execute per arrival so
    sessions quiesce and non-sticky policies genuinely move them."""
    cluster = ServingCluster(
        factory,
        replicas=replicas,
        policy=policy,
        max_batch_size=4,
        max_wait_us=0.0,
        queue_depth=len(payloads),
        clock=SimulatedClock(),
    )
    with cluster:
        outputs = []
        for i, payload in enumerate(payloads):
            handle = cluster.submit(
                payload,
                session_id=None if session_ids is None else session_ids[i],
            )
            if session_ids is not None:
                cluster.step(force=True)
            outputs.append(handle)
        cluster.run_until_idle()
        return [handle.result(timeout=0) for handle in outputs]


def routing_equivalence() -> dict:
    """Every policy bit-identical to sequential single-engine runs."""
    rng = np.random.default_rng(0)
    images = [rng.normal(size=(16, 16)) for _ in range(12)]
    prompts = [
        rng.integers(1, 32, size=int(rng.integers(1, 17))) for _ in range(12)
    ]
    # 4 sessions on 3 replicas: deliberately coprime, so round robin
    # must migrate KV state and the bits still have to match.
    steps = [
        (f"session-{s}", rng.normal(size=DECODER.dim))
        for _ in range(3)
        for s in range(4)
    ]
    references = {
        "vision": _sequential(vision_factory, images),
        "text_ragged": _sequential(text_factory, prompts),
        "decode_sessions": _sequential(
            decode_factory, [x for _, x in steps], [sid for sid, _ in steps]
        ),
    }
    results = {}
    for policy in POLICIES:
        runs = {
            "vision": _clustered(vision_factory, images, policy),
            "text_ragged": _clustered(text_factory, prompts, policy),
            "decode_sessions": _clustered(
                decode_factory,
                [x for _, x in steps],
                policy,
                [sid for sid, _ in steps],
            ),
        }
        for workload, outputs in runs.items():
            results[f"{policy}/{workload}"] = bool(
                all(
                    np.array_equal(a, b)
                    for a, b in zip(references[workload], outputs)
                )
            )
    return results


def fleet_scaling() -> list[dict]:
    """Virtual-time open-loop Poisson throughput per fleet size."""
    rows = []
    for replicas in FLEET_SIZES:
        rng = np.random.default_rng(2)
        gaps = rng.exponential(LOAD_MEAN_GAP_S, size=LOAD_REQUESTS)
        payload_rng = np.random.default_rng(3)
        images = [payload_rng.normal(size=(16, 16)) for _ in range(LOAD_REQUESTS)]
        cluster = ServingCluster(
            vision_factory,
            replicas=replicas,
            policy="least_outstanding",
            max_batch_size=8,
            max_wait_us=500.0,
            queue_depth=2 * LOAD_REQUESTS,
            clock=SimulatedClock(),
            service_model=SERVICE_MODEL,
        )
        with cluster:
            report = run_virtual_open_loop(cluster, images, gaps)
        report.pop("handles")
        report["replicas"] = replicas
        rows.append(report)
    return rows


def affinity_hit_rates() -> dict:
    """session_affinity vs round_robin on a multi-tenant decode mix."""
    tenants = (
        TenantSpec("chat-a", rate_rps=2000.0, weights={"decode": 1.0}, sessions=4),
        TenantSpec("chat-b", rate_rps=1000.0, weights={"decode": 1.0}, sessions=3),
    )
    results = {}
    outputs = {}
    for policy in ("round_robin", "session_affinity"):
        arrivals = multi_tenant_arrivals(
            tenants, horizon_s=15e-3, rng=np.random.default_rng(4)
        )
        payloads = {
            arrival.index: np.random.default_rng(arrival.index).normal(
                size=DECODER.dim
            )
            for arrival in arrivals
        }
        cluster = ServingCluster(
            decode_factory,
            replicas=3,
            policy=policy,
            max_batch_size=4,
            max_wait_us=0.0,
            queue_depth=len(arrivals),
            clock=SimulatedClock(),
        )
        with cluster:
            report = run_virtual_schedule(
                cluster,
                arrivals,
                lambda arrival: payloads[arrival.index],
                force_each=True,  # quiesce sessions between steps
            )
            outputs[policy] = [
                handle.result(timeout=0) for handle in report.pop("handles")
            ]
        results[policy] = {
            "requests": report["requests"],
            "affinity_hit_rate": cluster.metrics.affinity_hit_rate(),
            "migrations": cluster.metrics.migrations,
            "migrated_bytes": cluster.metrics.migrated_bytes,
            "tenants": cluster.metrics.tenant_counts(),
        }
    results["policies_bit_identical"] = bool(
        all(
            np.array_equal(a, b)
            for a, b in zip(outputs["round_robin"], outputs["session_affinity"])
        )
    )
    return results


def autoscaler_trajectory() -> dict:
    """One bursty run: scale-up under SLO pressure, drain when quiet."""
    clock = SimulatedClock()
    cluster = ServingCluster(
        vision_factory,
        replicas=1,
        policy="least_outstanding",
        max_batch_size=2,
        max_wait_us=0.0,
        queue_depth=128,
        clock=clock,
        service_model=SERVICE_MODEL,
        autoscaler=AutoscalerPolicy(
            min_replicas=1,
            max_replicas=4,
            high_backlog=50.0,
            low_backlog=0.5,
            latency_slo_s=2e-3,
            cooldown_s=0.5e-3,
        ),
    )
    rng = np.random.default_rng(5)
    with cluster:
        # Burst far beyond one replica's virtual service rate.
        for _ in range(32):
            clock.advance(0.1e-3)
            cluster.submit(rng.normal(size=(16, 16)))
            cluster.step(force=False)
        cluster.run_until_idle()
        # Quiet tail: idle ticks drain the fleet back to min.
        for _ in range(8):
            clock.advance(5e-3)
            cluster.step()
        return {
            "events": [event.as_dict() for event in cluster.metrics.events],
            "final_fleet_size": cluster.fleet_size,
            "completed": cluster.metrics.completed,
            "failed": cluster.metrics.failed,
        }


def autoscaler_determinism() -> dict:
    first = autoscaler_trajectory()
    second = autoscaler_trajectory()
    kinds = [event["kind"] for event in first["events"]]
    return {
        **first,
        "deterministic": first == second,
        "scaled_up": "scale_up" in kinds,
        "drained": "drain" in kinds,
        "retired": "retire" in kinds,
    }


def run(assert_speedup: bool = True, out_path: str = "BENCH_cluster.json") -> dict:
    equiv = routing_equivalence()
    print("Routing equivalence (cluster == sequential single engine, equal seeds)")
    for key, ok in sorted(equiv.items()):
        print(f"  {key:40s} {ok}")
        assert ok, f"cluster routing equivalence gate failed: {key}"

    print(
        f"\nVirtual-time fleet scaling ({LOAD_REQUESTS} requests, Poisson "
        f"mean gap {LOAD_MEAN_GAP_S * 1e3:.2f} ms, service "
        f"{SERVICE_MODEL.base_s * 1e3:.1f} ms + "
        f"{SERVICE_MODEL.per_request_s * 1e3:.2f} ms/req)"
    )
    curve = fleet_scaling()
    for row in curve:
        print(
            f"  replicas={row['replicas']}: {row['throughput_rps']:8.0f} req/s | "
            f"p50 {row['latency_p50_ms']:6.2f} ms | "
            f"p99 {row['latency_p99_ms']:6.2f} ms"
        )
    throughputs = [row["throughput_rps"] for row in curve]
    assert all(a < b for a, b in zip(throughputs, throughputs[1:])), (
        f"fleet throughput must increase strictly with replica count, "
        f"got {throughputs}"
    )
    gain = throughputs[-1] / throughputs[0]
    floor = MIN_FLEET_GAIN if assert_speedup else 1.0
    print(f"  fleet gain (4 vs 1 replicas): {gain:.2f}x (floor {floor:.2f}x)")
    assert gain >= floor, f"fleet gain {gain:.2f}x below the {floor:.2f}x floor"

    affinity = affinity_hit_rates()
    rr = affinity["round_robin"]["affinity_hit_rate"]
    sa = affinity["session_affinity"]["affinity_hit_rate"]
    print(
        f"\nAffinity hit rate on the multi-tenant decode mix: "
        f"round_robin {rr:.3f} "
        f"({affinity['round_robin']['migrations']} migrations) vs "
        f"session_affinity {sa:.3f} "
        f"({affinity['session_affinity']['migrations']} migrations)"
    )
    assert affinity["policies_bit_identical"], (
        "policies disagreed on decode bits despite KV migration"
    )
    assert sa > rr, (
        f"session_affinity hit rate {sa:.3f} must beat round_robin {rr:.3f}"
    )

    autoscaler = autoscaler_determinism()
    kinds = [event["kind"] for event in autoscaler["events"]]
    print(
        f"\nAutoscaler trajectory deterministic: {autoscaler['deterministic']} "
        f"({len(kinds)} events: {kinds}; final fleet "
        f"{autoscaler['final_fleet_size']})"
    )
    assert autoscaler["deterministic"], "autoscaler event log must replay exactly"
    assert autoscaler["scaled_up"], "the burst must trigger a scale-up"
    assert autoscaler["drained"] and autoscaler["retired"], (
        "the quiet tail must drain and retire replicas"
    )
    assert autoscaler["failed"] == 0

    report = {
        "equivalence": equiv,
        "fleet_scaling": curve,
        "fleet_gain": gain,
        "affinity": affinity,
        "autoscaler": autoscaler,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_cluster(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["fleet_gain"] = result["fleet_gain"]
    benchmark.extra_info["fleet_scaling"] = result["fleet_scaling"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="relax the fleet-gain margin (equivalence, strict scaling "
        "order, affinity, and determinism gates always apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_cluster.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_speedup=not cli.report_only, out_path=cli.out)
