"""Table I — all four PTC designs on the two Transformer workload types.

Quantifies the paper's qualitative capability matrix: on dynamic
attention the weight-static designs (MZI, PCM) drown in operand
mapping/reprogramming, the MRR bank pays decomposition + locking, and
DPTC wins on both workload types.
"""

from repro.analysis import ATTENTION_EXAMPLE, LINEAR_EXAMPLE, render_table
from repro.arch import LighteningTransformer, lt_base
from repro.baselines import (
    TABLE_I,
    MRRAccelerator,
    MZIAccelerator,
    PCMAccelerator,
)
from repro.units import MJ, MS


def bench_table1_ptc_designs(benchmark):
    lt = LighteningTransformer(lt_base(4))
    designs = [
        ("MZI array", MZIAccelerator(bits=4)),
        ("PCM crossbar", PCMAccelerator(bits=4)),
        ("MRR bank", MRRAccelerator(bits=4)),
    ]

    def measure():
        rows = []
        for label, op in (("attention", ATTENTION_EXAMPLE), ("linear", LINEAR_EXAMPLE)):
            reference = lt.run([op])
            rows.append(
                {
                    "workload": label,
                    "design": "DPTC (LT-B)",
                    "energy_mj": reference.energy_joules / MJ,
                    "latency_ms": reference.latency / MS,
                    "vs_dptc_energy": 1.0,
                    "vs_dptc_latency": 1.0,
                }
            )
            for name, accelerator in designs:
                run = accelerator.run([op])
                rows.append(
                    {
                        "workload": label,
                        "design": name,
                        "energy_mj": run.energy_joules / MJ,
                        "latency_ms": run.latency / MS,
                        "vs_dptc_energy": run.energy_joules
                        / reference.energy_joules,
                        "vs_dptc_latency": run.latency / reference.latency,
                    }
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Table I's punchline: only DPTC has dynamic MM + free full range.
    assert [k for k, v in TABLE_I.items() if v.dynamic_mm and v.full_range_no_overhead] == ["dptc"]
    # DPTC wins energy and latency on both workload classes.
    for row in rows:
        if row["design"] != "DPTC (LT-B)":
            assert row["vs_dptc_energy"] > 1.0
            assert row["vs_dptc_latency"] > 1.0
    # Weight-static designs are hit hardest on the dynamic workload.
    attention = {r["design"]: r for r in rows if r["workload"] == "attention"}
    linear = {r["design"]: r for r in rows if r["workload"] == "linear"}
    assert (
        attention["PCM crossbar"]["vs_dptc_latency"]
        > linear["PCM crossbar"]["vs_dptc_latency"]
    )

    benchmark.extra_info["pcm_attention_latency_x"] = attention["PCM crossbar"][
        "vs_dptc_latency"
    ]
    print()
    print(render_table(rows, title="Table I quantified: PTC designs on both workloads"))
