"""Engine hot-path benchmark: stage breakdown + pipelined throughput.

Sections, each with a hard equivalence gate and a measurement:

* **Bit-equality gates** (always enforced) — the invariant that makes
  pipelining safe to ship: chunked execution consumes the RNG in
  per-chunk fused draws in batch order, so for equal seeds

  - ``pipelined_matmul`` (any depth) == the sequential per-chunk
    oracle (``concatenate(core.matmul(chunk) for chunk in bounds)``),
  - pipelined == unpipelined (depth 0) == ``parallel=False``
    sequential on :class:`ShardedDPTC`, across the ``thread`` and
    ``process`` backends and both shard axes,
  - a single chunk (``chunk_size >= batch``) reproduces the unchunked
    whole-batch call bit for bit.

* **Per-stage breakdown** — best-of wall-clock of the four hot-path
  stages (sample / encode / compute / detect) of the headline batched
  matmul, via :func:`repro.core.hotpath.profile_stages`; recorded in
  the artifact so stage regressions show up in CI trends.

* **Throughput + speedup floors** (nightly) — effective single-engine
  matmul throughput (GFLOP/s over the end-to-end noisy call) must
  clear :data:`MIN_THROUGHPUT_GFLOPS`, and thread-backend pipelined
  execution must beat the identical sequential chunk schedule by
  :data:`MIN_PIPELINE_SPEEDUP` on the headline case.  Overlap needs
  parallel hardware, so ``--report-only`` (the fast lane; also 1-CPU
  runners) records both numbers without asserting the floors; the
  bit-equality gates always apply.

Emits a ``BENCH_hotpath.json`` artifact (``--out PATH`` to relocate)
with every number printed, including ``host_cpus`` so flat speedups on
serial runners are explainable from the artifact alone.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import DPTC, NoiseModel, ShardedDPTC
from repro.core.hotpath import chunk_bounds, pipelined_matmul, profile_stages

#: Headline batched case: an attention-shaped stack.
HEAD_BATCH = 64
HEAD_M = 32
HEAD_D = 64
HEAD_N = 32

#: Chunk/depth used for the headline pipelined run.
HEAD_CHUNK = 8
HEAD_DEPTH = 1

#: Nightly floor on pipelined-over-sequential speedup (headline case).
MIN_PIPELINE_SPEEDUP = 1.15

#: Nightly floor on effective single-engine matmul throughput.
MIN_THROUGHPUT_GFLOPS = 0.2


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall-clock of ``fn`` in seconds (after one warm-up)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def _headline_operands() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0)
    a = rng.normal(size=(HEAD_BATCH, HEAD_M, HEAD_D))
    b = rng.normal(size=(HEAD_BATCH, HEAD_D, HEAD_N))
    return a, b


def bit_equality() -> dict:
    """The reordering-only invariant, checked everywhere it must hold."""
    rng = np.random.default_rng(3)
    a = rng.normal(size=(13, 6, 24))
    b = rng.normal(size=(13, 24, 6))
    a[4] = 0.0  # an all-zero stack exercises the draw-less short-circuit
    core = DPTC(noise=NoiseModel.paper_default())

    # pipelined_matmul (any depth) vs the sequential per-chunk oracle.
    def oracle(chunk_size: int) -> np.ndarray:
        stream = np.random.default_rng(42)
        return np.concatenate(
            [
                core.matmul(a[start:stop], b[start:stop], rng=stream)
                for start, stop in chunk_bounds(a.shape[0], chunk_size)
            ],
            axis=0,
        )

    oracle_exact = True
    with ThreadPoolExecutor(max_workers=1) as prefetch:
        for chunk_size in (1, 3, 5, 13):
            want = oracle(chunk_size)
            for depth, pool in ((0, None), (1, prefetch), (3, prefetch)):
                got = pipelined_matmul(
                    core, a, b, np.random.default_rng(42),
                    chunk_size=chunk_size, pipeline_depth=depth, prefetch=pool,
                )
                if not np.array_equal(want, got):
                    oracle_exact = False

    # Single chunk == the unchunked whole-batch call.
    whole = core.matmul(a, b, rng=np.random.default_rng(11))
    single_chunk = pipelined_matmul(
        core, a, b, np.random.default_rng(11), chunk_size=a.shape[0],
        pipeline_depth=1,
    )
    single_chunk_exact = bool(np.array_equal(whole, single_chunk))

    # ShardedDPTC: pipelined == unpipelined == sequential, thread +
    # process backends, both shard axes, chunked and unchunked.
    sharded_bit_equal = {}
    for shard_axis in ("batch", "contraction"):
        for chunk_size in (None, 2):
            sequential = ShardedDPTC(
                num_cores=3, noise=NoiseModel.paper_default(),
                shard_axis=shard_axis, parallel=False, chunk_size=chunk_size,
            )
            want = sequential.matmul(a, b, rng=np.random.default_rng(5))
            sequential.close()
            equal = True
            for backend in ("thread", "process"):
                for depth in (0, 1, 2):
                    engine = ShardedDPTC(
                        num_cores=3, noise=NoiseModel.paper_default(),
                        shard_axis=shard_axis, backend=backend,
                        chunk_size=chunk_size, pipeline_depth=depth,
                    )
                    got = engine.matmul(a, b, rng=np.random.default_rng(5))
                    engine.close()
                    if not np.array_equal(want, got):
                        equal = False
            key = f"{shard_axis}/chunk={chunk_size}"
            sharded_bit_equal[key] = equal
    return {
        "oracle_exact": oracle_exact,
        "single_chunk_exact": single_chunk_exact,
        "sharded_bit_equal": sharded_bit_equal,
    }


def stage_breakdown() -> dict:
    """Per-stage best-of timings of the headline noisy matmul."""
    a, b = _headline_operands()
    core = DPTC(noise=NoiseModel.paper_default())
    times = profile_stages(core, a, b, seed=0, repeats=3)
    return {
        "shape": [HEAD_BATCH, HEAD_M, HEAD_D, HEAD_N],
        "seconds": times,
        "share": {
            name: times[name] / times["total"]
            for name in ("sample", "encode", "compute", "detect")
        },
    }


def pipeline_throughput() -> dict:
    """Headline sequential-vs-pipelined wall-clock + engine throughput."""
    a, b = _headline_operands()
    core = DPTC(noise=NoiseModel.paper_default())
    flop = 2.0 * HEAD_BATCH * HEAD_M * HEAD_D * HEAD_N

    total_s = _best_of(
        lambda: core.matmul(a, b, rng=np.random.default_rng(1))
    )
    sequential_s = _best_of(
        lambda: pipelined_matmul(
            core, a, b, np.random.default_rng(1),
            chunk_size=HEAD_CHUNK, pipeline_depth=0,
        )
    )
    with ThreadPoolExecutor(max_workers=1) as prefetch:
        pipelined_s = _best_of(
            lambda: pipelined_matmul(
                core, a, b, np.random.default_rng(1),
                chunk_size=HEAD_CHUNK, pipeline_depth=HEAD_DEPTH,
                prefetch=prefetch,
            )
        )
    return {
        "shape": [HEAD_BATCH, HEAD_M, HEAD_D, HEAD_N],
        "chunk_size": HEAD_CHUNK,
        "pipeline_depth": HEAD_DEPTH,
        "whole_batch_s": total_s,
        "sequential_s": sequential_s,
        "pipelined_s": pipelined_s,
        "pipelined_speedup": sequential_s / pipelined_s,
        "throughput_gflops": flop / total_s / 1e9,
    }


def run(assert_speedup: bool = True, out_path: str = "BENCH_hotpath.json") -> dict:
    equality = bit_equality()
    print("Bit-equality gates (same draws, same order, reordered in time)")
    print(f"  pipelined == sequential per-chunk oracle : {equality['oracle_exact']}")
    print(f"  single chunk == unchunked whole batch    : {equality['single_chunk_exact']}")
    for key, equal in equality["sharded_bit_equal"].items():
        print(f"  sharded [{key}] pipelined == unpipelined == sequential : {equal}")
    assert equality["oracle_exact"], "pipelined result drifted from the chunk oracle"
    assert equality["single_chunk_exact"], "single-chunk result drifted from unchunked"
    assert all(equality["sharded_bit_equal"].values()), (
        "sharded pipelined execution drifted across backends/axes"
    )

    stages = stage_breakdown()
    print("\nPer-stage breakdown "
          f"([{HEAD_BATCH}x{HEAD_M}x{HEAD_D}] x [{HEAD_BATCH}x{HEAD_D}x{HEAD_N}])")
    for name in ("sample", "encode", "compute", "detect"):
        print(
            f"  {name:7s}: {stages['seconds'][name] * 1e3:7.3f} ms "
            f"({100.0 * stages['share'][name]:5.1f} %)"
        )
    print(f"  total  : {stages['seconds']['total'] * 1e3:7.3f} ms")

    cpus = os.cpu_count() or 1
    throughput = pipeline_throughput()
    print(f"\nPipelined throughput ({cpus} host CPU(s), "
          f"chunk={HEAD_CHUNK}, depth={HEAD_DEPTH})")
    print(
        f"  whole batch {throughput['whole_batch_s'] * 1e3:7.2f} ms | "
        f"sequential {throughput['sequential_s'] * 1e3:7.2f} ms | "
        f"pipelined {throughput['pipelined_s'] * 1e3:7.2f} ms "
        f"({throughput['pipelined_speedup']:.2f}x, floor {MIN_PIPELINE_SPEEDUP:.2f}x)"
    )
    print(
        f"  engine throughput {throughput['throughput_gflops']:.3f} GFLOP/s "
        f"(floor {MIN_THROUGHPUT_GFLOPS:.2f})"
    )
    if assert_speedup:
        assert throughput["throughput_gflops"] >= MIN_THROUGHPUT_GFLOPS, (
            f"engine throughput {throughput['throughput_gflops']:.3f} GFLOP/s "
            f"below the {MIN_THROUGHPUT_GFLOPS:.2f} floor"
        )
        assert throughput["pipelined_speedup"] >= MIN_PIPELINE_SPEEDUP, (
            f"pipelined speedup {throughput['pipelined_speedup']:.2f}x below "
            f"the {MIN_PIPELINE_SPEEDUP:.2f}x floor"
        )

    report = {
        "host_cpus": cpus,
        "bit_equality": equality,
        "stages": stages,
        "throughput": throughput,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {out_path}")
    return report


def bench_hotpath(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pipelined_speedup"] = (
        result["throughput"]["pipelined_speedup"]
    )
    benchmark.extra_info["throughput_gflops"] = (
        result["throughput"]["throughput_gflops"]
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="skip the throughput/speedup floors (bit-equality gates still apply)",
    )
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="JSON artifact path"
    )
    cli = parser.parse_args()
    run(assert_speedup=not cli.report_only, out_path=cli.out)
