"""Sec. VI-A (end) — heterogeneous / searched DPTC core shapes.

Paper: "we have the flexibility to explore heterogeneous DPTCs by
having different/searched core sizes ... For example, we can have a
specific DPTC engine for vector-matrix multiplication by setting Nh to
1 to support vector-matrix multiplication featured by non-block-wise
sparsity."  This bench runs the shape search on three workload classes
and confirms the searched engines beat the one-size-fits-all core.
"""

from repro.analysis import render_table
from repro.arch.heterogeneous import evaluate_shape, search_core_shape
from repro.core import DPTCGeometry
from repro.workloads import MODULE_ATTENTION, MODULE_FFN, GEMMOp


WORKLOADS = {
    "dense attention (197x64x197)": [
        GEMMOp("qkt", 197, 64, 197, module=MODULE_ATTENTION, dynamic=True, count=36)
    ],
    "FFN linear (197x192x768)": [
        GEMMOp("ffn1", 197, 192, 768, module=MODULE_FFN, count=12)
    ],
    "vector-matrix (1x48x192, sparse rows)": [
        GEMMOp("vm", 1, 48, 192, module=MODULE_ATTENTION, dynamic=True, count=256)
    ],
}


def bench_heterogeneous_core_search(benchmark):
    default = DPTCGeometry(12, 12, 12)

    def sweep():
        rows = []
        for name, ops in WORKLOADS.items():
            baseline = evaluate_shape(default, ops)
            best = search_core_shape(ops, mac_budget=default.macs_per_cycle)
            rows.append(
                {
                    "workload": name,
                    "best_shape (Nh,Nl,Nv)": str(best.shape),
                    "best_cycles": best.cycles,
                    "default_cycles": baseline.cycles,
                    "cycle_gain": baseline.cycles / best.cycles,
                    "best_util_pct": 100 * best.utilization,
                    "default_util_pct": 100 * baseline.utilization,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_workload = {row["workload"]: row for row in rows}
    # Searched shapes never lose to the default.
    assert all(row["cycle_gain"] >= 1.0 for row in rows)
    # The paper's example: vector workloads want a flat (Nh small) engine
    # and gain substantially.
    vm = by_workload["vector-matrix (1x48x192, sparse rows)"]
    assert vm["cycle_gain"] > 4.0
    assert vm["best_shape (Nh,Nl,Nv)"].startswith("(1,") or vm[
        "best_shape (Nh,Nl,Nv)"
    ].startswith("(2,")

    benchmark.extra_info["vm_cycle_gain"] = vm["cycle_gain"]
    print()
    print(render_table(rows, title="Heterogeneous DPTC core search"))


def bench_device_sensitivity(benchmark):
    """Extension: which Table III parameter moves the design most."""
    from repro.analysis.sensitivity import sensitivity_sweep

    def sweep():
        return [
            {
                "parameter": r.parameter,
                "power_ratio_at_2x": r.power_ratio,
                "energy_ratio_at_2x": r.energy_ratio,
                "power_elasticity": r.power_elasticity,
            }
            for r in sensitivity_sweep(factor=2.0)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_parameter = {row["parameter"]: row for row in rows}
    # Converters/modulators dominate; passive losses barely matter.
    assert by_parameter["dac_power"]["power_ratio_at_2x"] > by_parameter[
        "coupler_loss"
    ]["power_ratio_at_2x"]
    assert by_parameter["wall_plug_efficiency"]["power_ratio_at_2x"] < 1.0

    benchmark.extra_info["top_parameter"] = rows[0]["parameter"]
    print()
    print(render_table(rows, title="Device-parameter sensitivity (2x scaling)"))
