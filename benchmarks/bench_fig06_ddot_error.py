"""Fig. 6 — circuit-level validation of the DDot dot-product engine.

Paper: random length-12 dot products with 0.03 magnitude noise, 2 deg
phase noise and WDM dispersion show ~2.6 % (4-bit) and ~3.4 % (8-bit)
relative error in the Lumerical INTERCONNECT simulation.  Our
transfer-matrix substitute lands in the same few-percent band.
"""

from repro.analysis import fig6_ddot_error, render_table


def bench_fig6_ddot_error(benchmark):
    rows = benchmark.pedantic(
        lambda: fig6_ddot_error(n_trials=800, seed=0), rounds=1, iterations=1
    )

    by_bits = {row["bits"]: row for row in rows}
    assert 1.5 < by_bits[4]["mean_error_pct"] < 6.0
    assert 1.5 < by_bits[8]["mean_error_pct"] < 6.0

    for row in rows:
        benchmark.extra_info[f"mean_error_pct_{row['bits']}b"] = row[
            "mean_error_pct"
        ]
    print()
    print(render_table(rows, title="Fig. 6: DDot dot-product error (paper: 2.6 % / 3.4 %)"))
