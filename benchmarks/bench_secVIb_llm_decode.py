"""Sec. VI-B — LLM autoregressive decode on Lightening-Transformer.

Paper (discussion): decoder-only LLMs "generate tokens one at a time
... resulting in small-dimensional matrix multiplications with low
operation intensity.  This characteristic makes LLMs memory-bounded and
underutilized the ultra-fast computing power offered by the photonic
chips"; batching requests and recomputing K/V are cited as remedies.
This bench quantifies each claim with the roofline model.
"""

from repro.analysis import analyze_decode, render_table
from repro.arch import lt_base, workload_latency
from repro.workloads import gpt2_small, kv_cache_bytes, kv_recompute_trace, prefill_trace


def bench_llm_decode_roofline(benchmark):
    accelerator = lt_base(8)
    model = gpt2_small()

    def sweep():
        rows = []
        for context in (128, 512, 2048):
            for batch in (1, 8, 64):
                analysis = analyze_decode(accelerator, model, context, batch)
                rows.append(
                    {
                        "context": context,
                        "batch": batch,
                        "ai_flops_per_byte": analysis.arithmetic_intensity,
                        "memory_bound": analysis.memory_bound,
                        "compute_util_pct": 100 * analysis.compute_utilization,
                        "step_latency_us": analysis.latency * 1e6,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Batch-1 decode is memory-bound at every context length.
    singles = [r for r in rows if r["batch"] == 1]
    assert all(r["memory_bound"] for r in singles)
    assert all(r["compute_util_pct"] < 50 for r in singles)
    # Batching raises utilization.
    at_128 = {r["batch"]: r for r in rows if r["context"] == 128}
    assert at_128[64]["compute_util_pct"] > at_128[1]["compute_util_pct"]

    benchmark.extra_info["batch1_util_pct"] = singles[0]["compute_util_pct"]
    print()
    print(render_table(rows, title="Sec. VI-B: decode roofline on LT-B (8-bit)"))


def bench_llm_prefill_vs_decode(benchmark):
    """Prefill is compute-friendly; decode is not — the phase asymmetry."""
    accelerator = lt_base(8)
    model = gpt2_small()

    def measure():
        prefill_latency = workload_latency(
            accelerator, prefill_trace(model, prompt_len=512)
        )
        decode = analyze_decode(accelerator, model, context_len=512)
        recompute_time = workload_latency(
            accelerator, kv_recompute_trace(model, context_len=512)
        )
        return {
            "prefill_512_us": prefill_latency * 1e6,
            "decode_step_us": decode.latency * 1e6,
            "decode_memory_bound": decode.memory_bound,
            "kv_cache_512_mb": kv_cache_bytes(model, 512, 8) / 1e6,
            "kv_recompute_us": recompute_time * 1e6,
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert result["decode_memory_bound"]
    # Recomputing K/V optically costs ~100 us — the paper's point that
    # optical compute is cheap enough to trade against KV memory.
    assert result["kv_recompute_us"] < 200

    benchmark.extra_info.update(result)
    print()
    print(render_table([result], title="Sec. VI-B: prefill vs decode vs KV recompute"))
