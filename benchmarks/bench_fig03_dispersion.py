"""Fig. 3 — kappa(lambda) / phi(lambda) dispersion of the DDot design point.

Paper: over 25 DWDM channels the worst-case coupling deviation is ~1.8 %
and the worst-case phase deviation ~0.28 deg, both second-order flat at
the design point.
"""

import pytest

from repro.analysis import fig3_dispersion, render_table


def bench_fig3_dispersion(benchmark):
    result = benchmark.pedantic(fig3_dispersion, rounds=3, iterations=1)

    assert result["max_kappa_deviation_pct"] == pytest.approx(1.8, rel=0.1)
    assert result["max_phase_deviation_deg"] == pytest.approx(0.28, abs=0.02)

    benchmark.extra_info["max_kappa_deviation_pct"] = result[
        "max_kappa_deviation_pct"
    ]
    benchmark.extra_info["max_phase_deviation_deg"] = result[
        "max_phase_deviation_deg"
    ]
    print()
    print(render_table(result["rows"], title="Fig. 3: dispersion across 25 channels"))
